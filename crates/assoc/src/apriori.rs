//! The Apriori algorithm (Agrawal & Srikant, VLDB 1994).

use crate::candidate::apriori_gen;
use crate::hash_tree::HashTree;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::transactions::is_subset_sorted;
use dm_dataset::{DataError, TransactionDb, VerticalDb};
use dm_guard::{Guard, Outcome, TruncationReason};
use dm_obs::HeapSize;
use dm_par::{
    par_chunks_map_reduce_governed, par_range_map_reduce_governed, Chunking, Parallelism,
};
use std::time::Instant;

/// How many transactions a counting shard processes between guard polls;
/// bounds cancellation latency inside a database scan.
pub(crate) const POLL_STRIDE: usize = 256;

/// Sums the right-hand count vector into the left one (the merge step
/// of every Count Distribution pass: per-shard counters add up).
fn merge_counts<T: Copy + std::ops::AddAssign>(mut a: Vec<T>, b: Vec<T>) -> Vec<T> {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// How candidate supports are counted in passes ≥ 3 (pass 2 always
/// uses the dense triangular pair array, per the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountingStrategy {
    /// Hash-tree subset counting (the paper's data structure).
    HashTree {
        /// Hash buckets per interior node.
        fanout: usize,
        /// Candidates per leaf before splitting.
        leaf_capacity: usize,
    },
    /// Check every candidate against every transaction — the naive
    /// baseline, kept for the ablation benchmark.
    Linear,
}

impl Default for CountingStrategy {
    fn default() -> Self {
        CountingStrategy::HashTree {
            fanout: 8,
            leaf_capacity: 16,
        }
    }
}

/// Level-wise frequent-itemset miner with `apriori-gen` candidate
/// generation.
///
/// Pass 1 counts single items with a dense array; each later pass `k`
/// generates candidates from the frequent `(k-1)`-itemsets, counts them
/// in one database scan, and keeps those meeting the threshold.
#[derive(Debug, Clone)]
pub struct Apriori {
    min_support: MinSupport,
    counting: CountingStrategy,
    max_len: Option<usize>,
    pair_array: bool,
    vertical_pass2: bool,
    parallelism: Parallelism,
}

impl Apriori {
    /// Creates a miner with the default (hash tree) counting strategy.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            counting: CountingStrategy::default(),
            max_len: None,
            pair_array: true,
            vertical_pass2: false,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Sets how support counting is spread across threads (Count
    /// Distribution: each thread counts a shard of the database into a
    /// private counter array; shard counters merge by summation, so the
    /// result is identical for every [`Parallelism`] setting).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the counting strategy.
    pub fn with_counting(mut self, counting: CountingStrategy) -> Self {
        self.counting = counting;
        self
    }

    /// Enables/disables the dense triangular array for pass 2 (on by
    /// default). Disabling routes the pair pass through the configured
    /// [`CountingStrategy`] — only useful for the ablation benchmark,
    /// which quantifies how much the array matters.
    pub fn with_pair_array(mut self, pair_array: bool) -> Self {
        self.pair_array = pair_array;
        self
    }

    /// Routes pass 2 through the vertical layout: materialize per-item
    /// tid columns ([`VerticalDb`]) and count each candidate pair by
    /// column intersection instead of scanning transactions. Results and
    /// the admitted candidate count are identical to the default pair
    /// array (the tests enforce it); the trade is one column
    /// materialization against `m(m-1)/2` cache-friendly intersections,
    /// which pays off when the pair array would be large and sparse.
    /// Off by default.
    pub fn with_vertical_pass2(mut self, vertical_pass2: bool) -> Self {
        self.vertical_pass2 = vertical_pass2;
        self
    }

    /// Stops after mining itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// Pass 1: frequent single items via dense counting, one counter
    /// array per shard. Shards poll `guard` every [`POLL_STRIDE`]
    /// transactions; a trip voids the pass.
    fn frequent_items(
        par: Parallelism,
        db: &TransactionDb,
        min_count: usize,
        guard: &Guard,
    ) -> Result<Vec<(Itemset, usize)>, TruncationReason> {
        let n_items = db.n_items() as usize;
        let counts = par_chunks_map_reduce_governed(
            par,
            Chunking::PerThread,
            db.transactions(),
            guard,
            || vec![0usize; n_items],
            |shard| {
                let mut counts = vec![0usize; n_items];
                for (t, txn) in shard.iter().enumerate() {
                    if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break;
                    }
                    for &item in txn {
                        counts[item as usize] += 1;
                    }
                }
                counts
            },
            merge_counts,
        )?;
        Ok(counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(item, &c)| (vec![item as u32], c))
            .collect())
    }

    /// Pass 2: counts all pairs of frequent items with a dense
    /// triangular array — the paper's own treatment of the second pass,
    /// where candidate sets are too large for tree structures to pay off.
    /// Returns the frequent pairs and the implicit candidate count.
    fn frequent_pairs(
        par: Parallelism,
        db: &TransactionDb,
        l1: &[(Itemset, usize)],
        min_count: usize,
        guard: &Guard,
    ) -> Result<(Vec<(Itemset, usize)>, usize), TruncationReason> {
        let m = l1.len();
        if m < 2 {
            return Ok((Vec::new(), 0));
        }
        // Dense id per frequent item.
        let mut dense = vec![u32::MAX; db.n_items() as usize];
        for (id, (items, _)) in l1.iter().enumerate() {
            dense[items[0] as usize] = id as u32;
        }
        let n_pairs = m * (m - 1) / 2;
        // Triangular index for i < j over m items.
        let tri = |i: usize, j: usize| i * m - i * (i + 1) / 2 + (j - i - 1);
        let counts = par_chunks_map_reduce_governed(
            par,
            Chunking::PerThread,
            db.transactions(),
            guard,
            || vec![0u32; n_pairs],
            |shard| {
                let mut counts = vec![0u32; n_pairs];
                let mut present: Vec<usize> = Vec::new();
                for (t, txn) in shard.iter().enumerate() {
                    if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break;
                    }
                    present.clear();
                    present.extend(
                        txn.iter()
                            .map(|&item| dense[item as usize])
                            .filter(|&d| d != u32::MAX)
                            .map(|d| d as usize),
                    );
                    for (a, &i) in present.iter().enumerate() {
                        for &j in &present[a + 1..] {
                            counts[tri(i, j)] += 1;
                        }
                    }
                }
                counts
            },
            merge_counts,
        )?;
        let mut out = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                let c = counts[tri(i, j)] as usize;
                if c >= min_count {
                    out.push((vec![l1[i].0[0], l1[j].0[0]], c));
                }
            }
        }
        Ok((out, n_pairs))
    }

    /// Pass 2 over the vertical layout: one tid-column per item, each
    /// candidate pair counted by column intersection (AND + popcount or
    /// galloping merge, per column density). Same frequent pairs and the
    /// same analytic candidate count as [`Apriori::frequent_pairs`];
    /// rows of the pair triangle are sharded with [`Chunking::Fixed`],
    /// so the output is bit-identical for every thread count.
    fn frequent_pairs_vertical(
        par: Parallelism,
        db: &TransactionDb,
        l1: &[(Itemset, usize)],
        min_count: usize,
        guard: &Guard,
    ) -> Result<(Vec<(Itemset, usize)>, usize), TruncationReason> {
        let m = l1.len();
        if m < 2 {
            return Ok((Vec::new(), 0));
        }
        let n_pairs = m * (m - 1) / 2;
        let vertical =
            match VerticalDb::from_db_interruptible(db, POLL_STRIDE, || guard.should_stop()) {
                Some(v) => v,
                None => {
                    guard.check()?;
                    return Err(TruncationReason::Cancelled);
                }
            };
        let obs = guard.obs();
        if obs.enabled() {
            obs.gauge_max("assoc.mem.vertical_bytes", vertical.heap_bytes() as f64);
            obs.counter("assoc.apriori.pass2.vertical_intersections", n_pairs as u64);
        }
        let items: Vec<u32> = l1.iter().map(|(i, _)| i[0]).collect();
        let frequent = par_range_map_reduce_governed(
            par,
            Chunking::Fixed(16),
            m,
            guard,
            Vec::new,
            |rows| {
                let mut out: Vec<(Itemset, usize)> = Vec::new();
                let mut done = 0usize;
                for i in rows {
                    let a = vertical.column(items[i]);
                    for &b_item in &items[i + 1..] {
                        if done.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                            return out;
                        }
                        done += 1;
                        let c = a.intersect_count(vertical.column(b_item));
                        if c >= min_count {
                            out.push((vec![items[i], b_item], c));
                        }
                    }
                }
                out
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        )?;
        Ok((frequent, n_pairs))
    }

    /// Counts `candidates` over the database with the configured strategy.
    fn count_candidates(
        &self,
        db: &TransactionDb,
        candidates: Vec<Itemset>,
        k: usize,
        min_count: usize,
        guard: &Guard,
    ) -> Result<Vec<(Itemset, usize)>, TruncationReason> {
        match self.counting {
            CountingStrategy::HashTree {
                fanout,
                leaf_capacity,
            } => {
                // Build the tree once, then count shards into private
                // `CountState`s against the now-immutable tree and merge
                // by summation.
                let tree = HashTree::build(candidates, k, fanout, leaf_capacity);
                let obs = guard.obs();
                if obs.enabled() {
                    // The paper's memory claim for Apriori: the hash
                    // tree is the pass's big intermediate, and it stays
                    // small relative to the database in late passes.
                    let bytes = tree.heap_bytes() as f64;
                    obs.gauge_max_fmt(
                        format_args!("assoc.apriori.pass{k}.hashtree_mem_bytes"),
                        bytes,
                    );
                    obs.gauge_max("assoc.mem.hashtree_bytes", bytes);
                }
                let state = par_chunks_map_reduce_governed(
                    self.parallelism,
                    Chunking::PerThread,
                    db.transactions(),
                    guard,
                    || tree.new_count_state(),
                    |shard| {
                        let mut state = tree.new_count_state();
                        for (t, txn) in shard.iter().enumerate() {
                            if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                                break;
                            }
                            tree.count_transaction_into(txn, &mut state);
                        }
                        state
                    },
                    |mut a, b| {
                        a.absorb(&b);
                        a
                    },
                )?;
                obs.counter_fmt(
                    format_args!("assoc.apriori.pass{k}.hashtree_visits"),
                    state.node_visits(),
                );
                Ok(tree.into_frequent_with(state.counts(), min_count))
            }
            CountingStrategy::Linear => {
                let counts = par_chunks_map_reduce_governed(
                    self.parallelism,
                    Chunking::PerThread,
                    db.transactions(),
                    guard,
                    || vec![0usize; candidates.len()],
                    |shard| {
                        let mut counts = vec![0usize; candidates.len()];
                        for (t, txn) in shard.iter().enumerate() {
                            if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                                break;
                            }
                            if txn.len() < k {
                                continue;
                            }
                            for (cand, count) in candidates.iter().zip(&mut counts) {
                                if is_subset_sorted(cand, txn) {
                                    *count += 1;
                                }
                            }
                        }
                        counts
                    },
                    merge_counts,
                )?;
                let mut counted: Vec<(Itemset, usize)> = candidates
                    .into_iter()
                    .zip(counts)
                    .filter(|&(_, c)| c >= min_count)
                    .collect();
                counted.sort();
                Ok(counted)
            }
        }
    }
}

impl ItemsetMiner for Apriori {
    fn name(&self) -> &'static str {
        match self.counting {
            CountingStrategy::HashTree { .. } => "apriori",
            CountingStrategy::Linear => "apriori-linear",
        }
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let mut stats = MiningStats::default();
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let obs = guard.obs();
        if obs.enabled() {
            // Reference point for every *_mem_bytes comparison: the raw
            // transaction buffers (the paper's "size of the database").
            obs.gauge_max("assoc.mem.db_bytes", db.transactions().heap_bytes() as f64);
        }

        // Each pass is all-or-nothing under the guard: work units
        // (candidates) are admitted before counting starts, and a trip
        // mid-pass discards that pass entirely, so `levels` only ever
        // holds fully counted passes — keeping truncated results
        // downward closed and a subset of the ungoverned run.
        'mine: {
            // Pass 1: every item is a candidate.
            let t0 = Instant::now();
            if guard.try_work(u64::from(db.n_items())).is_err() {
                break 'mine;
            }
            let l1 = {
                let _pass = obs.span("assoc.apriori.pass1");
                Self::frequent_items(self.parallelism, db, min_count, guard)
            };
            let Ok(l1) = l1 else {
                break 'mine;
            };
            stats.push(1, db.n_items() as usize, l1.len(), t0.elapsed());
            levels.push(l1);

            let mut k = 1usize;
            loop {
                if self.max_len.is_some_and(|m| k >= m) {
                    break;
                }
                if levels[k - 1].len() < 2 {
                    break;
                }
                let t0 = Instant::now();
                let pass_span = obs.span_fmt(format_args!("assoc.apriori.pass{}", k + 1));
                let pass: Result<(Vec<(Itemset, usize)>, usize), TruncationReason> = if k == 1
                    && (self.pair_array || self.vertical_pass2)
                {
                    // Dense triangular-array or vertical-intersection
                    // counting for the pair pass. Either way the
                    // candidate count is known analytically, so the
                    // work is admitted *before* any pass structure is
                    // even allocated.
                    let m = levels[0].len();
                    let n_pairs = m * (m - 1) / 2;
                    guard.try_work(n_pairs as u64).and_then(|()| {
                        if self.vertical_pass2 {
                            Self::frequent_pairs_vertical(
                                self.parallelism,
                                db,
                                &levels[0],
                                min_count,
                                guard,
                            )
                        } else {
                            Self::frequent_pairs(self.parallelism, db, &levels[0], min_count, guard)
                        }
                    })
                } else {
                    let prev: Vec<Itemset> = levels[k - 1].iter().map(|(i, _)| i.clone()).collect();
                    let candidates = if k == 1 {
                        crate::candidate::gen_pairs(&prev.iter().map(|i| i[0]).collect::<Vec<_>>())
                    } else {
                        apriori_gen(&prev)
                    };
                    let n = candidates.len();
                    guard
                        .try_work(n as u64)
                        .and_then(|()| {
                            self.count_candidates(db, candidates, k + 1, min_count, guard)
                        })
                        .map(|frequent| (frequent, n))
                };
                drop(pass_span);
                let Ok((frequent, n_candidates)) = pass else {
                    break 'mine;
                };
                if n_candidates == 0 {
                    break;
                }
                stats.push(k + 1, n_candidates, frequent.len(), t0.elapsed());
                let done = frequent.is_empty();
                levels.push(frequent);
                k += 1;
                if done {
                    break;
                }
            }
        }

        stats.record_to(guard.obs(), "apriori");
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(levels, db.len()),
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn mines_the_paper_example() {
        let result = Apriori::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap();
        let f = &result.itemsets;
        // L1 = {1},{2},{3},{5}; item 4 infrequent.
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.support_count(&[4]), None);
        // L2 = {13},{23},{25},{35}.
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.support_count(&[1, 3]), Some(2));
        assert_eq!(f.support_count(&[2, 5]), Some(3));
        assert_eq!(f.support_count(&[1, 2]), None);
        // L3 = {235}.
        assert_eq!(f.level_len(3), 1);
        assert_eq!(f.support_count(&[2, 3, 5]), Some(2));
        assert_eq!(f.max_len(), 3);
        assert!(f.verify_downward_closure());
    }

    #[test]
    fn stats_track_candidates_per_pass() {
        let result = Apriori::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap();
        let s = &result.stats;
        assert!(s.n_passes() >= 3);
        // Pass 2 candidates: C(4,2) = 6 pairs.
        assert_eq!(s.passes[1].candidates, 6);
        assert_eq!(s.passes[1].frequent, 4);
        // Pass 3: only {2,3,5} survives apriori-gen.
        assert_eq!(s.passes[2].candidates, 1);
        assert_eq!(s.passes[2].frequent, 1);
    }

    #[test]
    fn linear_and_hashtree_agree() {
        let db = paper_db();
        let a = Apriori::new(MinSupport::Count(2)).mine(&db).unwrap();
        let b = Apriori::new(MinSupport::Count(2))
            .with_counting(CountingStrategy::Linear)
            .mine(&db)
            .unwrap();
        assert_eq!(a.itemsets, b.itemsets);
    }

    #[test]
    fn vertical_pass2_matches_pair_array() {
        // Quest data: realistically skewed supports, so the tid columns
        // land on both sides of the dense/sparse cutover.
        let db = dm_synth::QuestGenerator::new(dm_synth::QuestConfig::standard(8.0, 3.0, 300), 7)
            .unwrap()
            .generate(13);
        for min in [MinSupport::Fraction(0.02), MinSupport::Count(4)] {
            let plain = Apriori::new(min).mine(&db).unwrap();
            let vertical = Apriori::new(min)
                .with_vertical_pass2(true)
                .mine(&db)
                .unwrap();
            assert_eq!(plain.itemsets, vertical.itemsets);
            // Same analytic candidate admission on the pair pass.
            assert_eq!(
                plain.stats.passes[1].candidates,
                vertical.stats.passes[1].candidates
            );
        }
    }

    #[test]
    fn max_len_caps_mining() {
        let result = Apriori::new(MinSupport::Count(2))
            .with_max_len(2)
            .mine(&paper_db())
            .unwrap();
        assert_eq!(result.itemsets.max_len(), 2);
    }

    #[test]
    fn high_threshold_yields_nothing() {
        let result = Apriori::new(MinSupport::Count(5))
            .mine(&paper_db())
            .unwrap();
        assert!(result.itemsets.is_empty());
    }

    #[test]
    fn fraction_threshold() {
        // 0.75 of 4 = 3 transactions.
        let result = Apriori::new(MinSupport::Fraction(0.75))
            .mine(&paper_db())
            .unwrap();
        let f = &result.itemsets;
        assert_eq!(f.support_count(&[2]), Some(3));
        assert_eq!(f.support_count(&[2, 5]), Some(3));
        assert_eq!(f.support_count(&[1]), None);
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::new(vec![]);
        let result = Apriori::new(MinSupport::Count(1)).mine(&db).unwrap();
        assert!(result.itemsets.is_empty());
    }

    #[test]
    fn singleton_transactions() {
        let db = TransactionDb::new(vec![vec![0], vec![0], vec![1]]);
        let result = Apriori::new(MinSupport::Count(2)).mine(&db).unwrap();
        assert_eq!(result.itemsets.len(), 1);
        assert_eq!(result.itemsets.support_count(&[0]), Some(2));
    }
}
