//! # dm-assoc
//!
//! Association-rule mining in the style of Agrawal & Srikant, *"Fast
//! Algorithms for Mining Association Rules"* (VLDB 1994): frequent-itemset
//! discovery followed by confidence-filtered rule generation.
//!
//! ## Miners
//!
//! * [`Apriori`] — the level-wise algorithm with `apriori-gen` candidate
//!   generation and (optionally) hash-tree subset counting.
//! * [`AprioriTid`] — the variant that re-represents the database as
//!   candidate-id lists after the first pass, shrinking the data scanned
//!   in later passes.
//! * [`AprioriHybrid`] — the paper's headline algorithm: Apriori for the
//!   early passes, switching to the TID representation once it fits.
//! * [`Ais`] — the earlier Agrawal–Imielinski–Swami miner that generates
//!   candidates on the fly during each pass; one of the paper's two
//!   baselines.
//! * [`Setm`] — the set-oriented (SQL-style) miner of Houtsma & Swami;
//!   the paper's other baseline.
//! * [`BruteForce`] — an exhaustive reference miner over small item
//!   universes, used as the correctness oracle by the test suite.
//!
//! All miners implement [`ItemsetMiner`] and produce identical
//! [`FrequentItemsets`] (a property the test suite enforces), differing
//! only in the work they do — captured per pass in [`MiningStats`].
//!
//! ## Rules
//!
//! [`RuleGenerator`] runs `ap-genrules` over the mined itemsets and emits
//! [`Rule`]s with support, confidence and lift.
//!
//! ```
//! use dm_dataset::TransactionDb;
//! use dm_assoc::{Apriori, ItemsetMiner, MinSupport, RuleGenerator};
//!
//! let db = TransactionDb::new(vec![
//!     vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5],
//! ]);
//! let result = Apriori::new(MinSupport::Count(2)).mine(&db).unwrap();
//! assert_eq!(result.itemsets.support_count(&[2, 3, 5]), Some(2));
//!
//! let rules = RuleGenerator::new(0.9).generate(&result.itemsets).unwrap();
//! assert!(rules.iter().all(|r| r.confidence >= 0.9));
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod ais;
pub mod apriori;
pub mod apriori_tid;
pub mod brute;
pub mod candidate;
pub mod eclat;
pub mod fp_growth;
pub mod hash_tree;
pub mod hybrid;
pub mod itemsets;
pub mod method;
pub mod rules;
pub mod setm;
pub mod stats;

pub use ais::Ais;
pub use apriori::{Apriori, CountingStrategy};
pub use apriori_tid::AprioriTid;
pub use brute::BruteForce;
pub use eclat::Eclat;
pub use fp_growth::FpGrowth;
pub use hash_tree::HashTree;
pub use hybrid::AprioriHybrid;
pub use itemsets::{FrequentItemsets, Itemset};
pub use method::{mine, mine_governed, Method};
pub use rules::{Rule, RuleGenerator};
pub use setm::Setm;
pub use stats::{MiningStats, PassStats};

use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome};

/// Minimum-support threshold, either relative or absolute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSupport {
    /// Fraction of transactions in `(0, 1]`.
    Fraction(f64),
    /// Absolute transaction count (≥ 1).
    Count(usize),
}

impl MinSupport {
    /// Resolves the threshold to an absolute count for `db`.
    pub fn resolve(self, db: &TransactionDb) -> Result<usize, DataError> {
        match self {
            MinSupport::Fraction(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(DataError::InvalidParameter(format!(
                        "support fraction {f} not in (0, 1]"
                    )));
                }
                Ok(db.min_support_count(f))
            }
            MinSupport::Count(c) => {
                if c == 0 {
                    return Err(DataError::InvalidParameter(
                        "support count must be >= 1".into(),
                    ));
                }
                Ok(c)
            }
        }
    }
}

/// The output of a mining run: the frequent itemsets plus per-pass work
/// statistics.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// All frequent itemsets with their support counts.
    pub itemsets: FrequentItemsets,
    /// Per-pass candidate/frequent counts and timings.
    pub stats: MiningStats,
}

/// A frequent-itemset mining algorithm.
///
/// Every miner is *governed*: [`ItemsetMiner::mine_governed`] runs under a
/// [`Guard`] and degrades gracefully when a budget trips or the run is
/// cancelled, returning everything confirmed through the last completed
/// pass. The guard's work unit for all miners is **one candidate itemset
/// admitted to counting**, so `Budget::with_max_work(10_000)` caps the
/// candidate explosion at 10k candidates regardless of algorithm.
/// [`ItemsetMiner::mine`] is the ungoverned entry point: it delegates to
/// `mine_governed` with [`Guard::unlimited`], whose result is bit-identical
/// (the equivalence tests enforce this).
pub trait ItemsetMiner {
    /// A short human-readable algorithm name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Mines all frequent itemsets of `db` under the miner's threshold.
    fn mine(&self, db: &TransactionDb) -> Result<MiningResult, DataError> {
        Ok(self.mine_governed(db, &Guard::unlimited())?.result)
    }

    /// Mines under `guard`, returning the best valid partial result when
    /// truncated: all itemsets confirmed through the last *completed*
    /// pass, which keeps the result downward closed and a subset of the
    /// ungoverned run's.
    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_support_resolution() {
        let db = TransactionDb::new(vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(MinSupport::Fraction(0.5).resolve(&db).unwrap(), 2);
        assert_eq!(MinSupport::Count(3).resolve(&db).unwrap(), 3);
        assert!(MinSupport::Fraction(0.0).resolve(&db).is_err());
        assert!(MinSupport::Fraction(1.5).resolve(&db).is_err());
        assert!(MinSupport::Count(0).resolve(&db).is_err());
    }
}
