//! The adaptive mining front door: pick an algorithm (or let [`Method::Auto`]
//! pick one from dataset shape) and mine through a single call.
//!
//! ```
//! use dm_dataset::TransactionDb;
//! use dm_assoc::{mine, Method, MinSupport};
//!
//! let db = TransactionDb::new(vec![
//!     vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5],
//! ]);
//! let result = mine(&db, MinSupport::Count(2), Method::Auto).unwrap();
//! assert_eq!(result.itemsets.support_count(&[2, 3, 5]), Some(2));
//! ```
//!
//! Every method produces bit-identical [`FrequentItemsets`] (the
//! equivalence suite enforces it), so `Auto` is purely a performance
//! decision and is safe as the default.

use crate::{
    Apriori, AprioriHybrid, AprioriTid, Eclat, FpGrowth, ItemsetMiner, MinSupport, MiningResult,
};
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome};
use dm_par::Parallelism;

/// Below this many transactions any algorithm finishes instantly; the
/// candidate-count-friendly Apriori wins by skipping tree/column setup.
const AUTO_SMALL_DB: usize = 1_000;
/// At or above this item density (mean transaction length over the item
/// universe) transactions share long prefixes and the FP-tree compresses
/// hard.
const AUTO_DENSE: f64 = 0.05;
/// At or below this relative support Apriori's candidate sets explode;
/// FP-Growth's no-candidate-generation mining is the safe pick.
const AUTO_LOW_SUPPORT: f64 = 0.01;

/// Which mining algorithm the front door should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Choose between [`Method::Apriori`], [`Method::FpGrowth`] and
    /// [`Method::Eclat`] from dataset density, size and the support
    /// threshold (see the constants in this module; the decision is
    /// reported through the `assoc.auto.resolved` obs event).
    Auto,
    /// Level-wise Apriori with hash-tree counting.
    Apriori,
    /// AprioriTid: candidate-id lists after the first pass.
    AprioriTid,
    /// AprioriHybrid: Apriori early, TID lists once they fit.
    Hybrid,
    /// FP-tree mining without candidate generation.
    FpGrowth,
    /// Vertical tid-set intersection mining.
    Eclat,
}

impl Method {
    /// Resolves `Auto` against the dataset's shape; concrete methods
    /// return themselves. Errors only on an invalid support threshold.
    pub fn resolve(self, db: &TransactionDb, min_support: MinSupport) -> Result<Method, DataError> {
        if self != Method::Auto {
            return Ok(self);
        }
        let min_count = min_support.resolve(db)?;
        if db.len() < AUTO_SMALL_DB {
            return Ok(Method::Apriori);
        }
        let density = if db.n_items() == 0 {
            0.0
        } else {
            db.mean_len() / f64::from(db.n_items())
        };
        let rel_support = min_count as f64 / db.len() as f64;
        if density >= AUTO_DENSE || rel_support <= AUTO_LOW_SUPPORT {
            Ok(Method::FpGrowth)
        } else {
            Ok(Method::Eclat)
        }
    }

    /// Builds the miner for a **concrete** method (resolve `Auto`
    /// first); `parallelism` is forwarded to the algorithms that shard.
    pub fn miner(self, min_support: MinSupport, parallelism: Parallelism) -> Box<dyn ItemsetMiner> {
        match self {
            Method::Auto | Method::Apriori => {
                Box::new(Apriori::new(min_support).with_parallelism(parallelism))
            }
            Method::AprioriTid => Box::new(AprioriTid::new(min_support)),
            Method::Hybrid => Box::new(AprioriHybrid::new(min_support)),
            Method::FpGrowth => Box::new(FpGrowth::new(min_support).with_parallelism(parallelism)),
            Method::Eclat => Box::new(Eclat::new(min_support).with_parallelism(parallelism)),
        }
    }

    /// The `name()` the resolved miner will report.
    pub fn label(self) -> &'static str {
        match self {
            Method::Auto => "auto",
            Method::Apriori => "apriori",
            Method::AprioriTid => "apriori_tid",
            Method::Hybrid => "apriori_hybrid",
            Method::FpGrowth => "fp-growth",
            Method::Eclat => "eclat",
        }
    }
}

/// Mines `db` with the chosen (or auto-selected) algorithm under
/// `guard`. This is the recommended governed entry point; the result is
/// identical to constructing the concrete miner by hand.
pub fn mine_governed(
    db: &TransactionDb,
    min_support: MinSupport,
    method: Method,
    guard: &Guard,
) -> Result<Outcome<MiningResult>, DataError> {
    mine_governed_with(db, min_support, method, Parallelism::Sequential, guard)
}

/// [`mine_governed`] with an explicit [`Parallelism`] for the sharded
/// phases (results are bit-identical across settings).
pub fn mine_governed_with(
    db: &TransactionDb,
    min_support: MinSupport,
    method: Method,
    parallelism: Parallelism,
    guard: &Guard,
) -> Result<Outcome<MiningResult>, DataError> {
    let resolved = method.resolve(db, min_support)?;
    let obs = guard.obs();
    if method == Method::Auto && obs.enabled() {
        obs.event("assoc.auto.resolved", resolved.label());
    }
    resolved
        .miner(min_support, parallelism)
        .mine_governed(db, guard)
}

/// Mines `db` with the chosen (or auto-selected) algorithm, ungoverned.
/// This is the recommended entry point for straightforward use.
pub fn mine(
    db: &TransactionDb,
    min_support: MinSupport,
    method: Method,
) -> Result<MiningResult, DataError> {
    Ok(mine_governed(db, min_support, method, &Guard::unlimited())?.result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn every_method_agrees_on_the_paper_example() {
        let db = paper_db();
        let reference = mine(&db, MinSupport::Count(2), Method::Apriori).unwrap();
        for method in [
            Method::Auto,
            Method::AprioriTid,
            Method::Hybrid,
            Method::FpGrowth,
            Method::Eclat,
        ] {
            let result = mine(&db, MinSupport::Count(2), method).unwrap();
            assert_eq!(result.itemsets, reference.itemsets, "{method:?}");
        }
    }

    #[test]
    fn auto_picks_apriori_for_tiny_databases() {
        let resolved = Method::Auto
            .resolve(&paper_db(), MinSupport::Count(2))
            .unwrap();
        assert_eq!(resolved, Method::Apriori);
    }

    #[test]
    fn auto_picks_fp_growth_for_dense_or_low_support_data() {
        // 2000 transactions over 40 items: density 0.5.
        let dense = TransactionDb::new(
            (0..2000u32)
                .map(|t| (0..40).filter(|i| (t + i) % 2 == 0).collect())
                .collect(),
        );
        assert_eq!(
            Method::Auto
                .resolve(&dense, MinSupport::Fraction(0.1))
                .unwrap(),
            Method::FpGrowth
        );
        // Sparse but at a support threshold in the explosion regime.
        let sparse = TransactionDb::new((0..2000u32).map(|t| vec![t % 500, 500 + t % 7]).collect());
        assert_eq!(
            Method::Auto
                .resolve(&sparse, MinSupport::Fraction(0.001))
                .unwrap(),
            Method::FpGrowth
        );
    }

    #[test]
    fn auto_picks_eclat_for_sparse_moderate_support_data() {
        let sparse = TransactionDb::new(
            (0..2000u32)
                .map(|t| (0..6).map(|k| (t * 7 + k * 131) % 1000).collect())
                .collect(),
        );
        assert_eq!(
            Method::Auto
                .resolve(&sparse, MinSupport::Fraction(0.05))
                .unwrap(),
            Method::Eclat
        );
    }

    #[test]
    fn concrete_methods_resolve_to_themselves() {
        let db = paper_db();
        for method in [
            Method::Apriori,
            Method::AprioriTid,
            Method::Hybrid,
            Method::FpGrowth,
            Method::Eclat,
        ] {
            assert_eq!(method.resolve(&db, MinSupport::Count(2)).unwrap(), method);
        }
    }
}
