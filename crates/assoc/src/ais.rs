//! The AIS algorithm (Agrawal, Imielinski & Swami, SIGMOD 1993) — the
//! pre-Apriori miner used as the baseline in the VLDB-'94 evaluation.
//!
//! AIS is level-wise too, but it has no separate candidate-generation
//! step: during pass `k`, every frequent `(k-1)`-itemset found inside a
//! transaction is extended *on the fly* with each larger item of that
//! transaction, and the extension's count is bumped in a hash table.
//! Because extensions are generated per transaction rather than once
//! from `L_{k-1} ⋈ L_{k-1}`, AIS counts far more distinct candidates
//! than Apriori — the effect experiments E1–E2 reproduce.

use crate::apriori::POLL_STRIDE;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::transactions::is_subset_sorted;
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome};
use std::collections::HashMap;
use std::time::Instant;

/// Frequent-itemset miner with on-the-fly candidate extension.
#[derive(Debug, Clone)]
pub struct Ais {
    min_support: MinSupport,
    max_len: Option<usize>,
}

impl Ais {
    /// Creates a miner with the given threshold.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            max_len: None,
        }
    }

    /// Stops after mining itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }
}

impl ItemsetMiner for Ais {
    fn name(&self) -> &'static str {
        "ais"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let mut stats = MiningStats::default();
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();

        let obs = guard.obs();
        // A trip anywhere inside a pass discards that pass (see the
        // trait docs); only fully counted passes reach `levels`.
        'mine: {
            // Pass 1: dense item counting (identical to Apriori's pass 1).
            let pass1_span = obs.span("assoc.ais.pass1");
            let t0 = Instant::now();
            if guard.try_work(u64::from(db.n_items())).is_err() {
                break 'mine;
            }
            let mut counts = vec![0usize; db.n_items() as usize];
            for (t, txn) in db.iter().enumerate() {
                if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    break 'mine;
                }
                for &item in txn {
                    counts[item as usize] += 1;
                }
            }
            let l1: Vec<(Itemset, usize)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= min_count)
                .map(|(item, &c)| (vec![item as u32], c))
                .collect();
            drop(pass1_span);
            stats.push(1, db.n_items() as usize, l1.len(), t0.elapsed());
            levels.push(l1);

            let mut k = 1usize;
            loop {
                if self.max_len.is_some_and(|m| m <= k) {
                    break;
                }
                let prev = &levels[k - 1];
                if prev.is_empty() {
                    break;
                }
                let t0 = Instant::now();
                let pass_span = obs.span_fmt(format_args!("assoc.ais.pass{}", k + 1));
                // Extend every frequent (k-1)-itemset found in each
                // transaction with each later transaction item. AIS only
                // discovers its candidates *during* the scan, so work is
                // charged incrementally: after each transaction, the
                // candidates it introduced are admitted against the
                // budget, bounding the overshoot of a work cap by one
                // transaction's extensions.
                let mut candidate_counts: HashMap<Itemset, usize> = HashMap::new();
                let mut charged = 0u64;
                for (t, txn) in db.iter().enumerate() {
                    if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break 'mine;
                    }
                    if txn.len() < k + 1 {
                        continue;
                    }
                    for (seed, _) in prev.iter() {
                        if !is_subset_sorted(seed, txn) {
                            continue;
                        }
                        let Some(&max_item) = seed.last() else {
                            continue;
                        };
                        let from = txn.partition_point(|&i| i <= max_item);
                        for &ext in &txn[from..] {
                            let mut cand: Itemset = Vec::with_capacity(seed.len() + 1);
                            cand.extend_from_slice(seed);
                            cand.push(ext);
                            *candidate_counts.entry(cand).or_insert(0) += 1;
                        }
                    }
                    let delta = candidate_counts.len() as u64 - charged;
                    if delta > 0 {
                        if guard.try_work(delta).is_err() {
                            break 'mine;
                        }
                        charged += delta;
                    }
                }
                let n_candidates = candidate_counts.len();
                if n_candidates == 0 {
                    break;
                }
                let mut lk: Vec<(Itemset, usize)> = candidate_counts
                    .into_iter()
                    .filter(|&(_, c)| c >= min_count)
                    .collect();
                lk.sort();
                drop(pass_span);
                stats.push(k + 1, n_candidates, lk.len(), t0.elapsed());
                let done = lk.is_empty();
                levels.push(lk);
                k += 1;
                if done {
                    break;
                }
            }
        }

        stats.record_to(guard.obs(), "ais");
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(levels, db.len()),
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriTid};

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_paper_example() {
        let f = Ais::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap()
            .itemsets;
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert_eq!(f.support_count(&[2, 3, 5]), Some(2));
    }

    #[test]
    fn all_three_miners_agree() {
        let db = paper_db();
        for min in 1..=3 {
            let a = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
            let t = AprioriTid::new(MinSupport::Count(min)).mine(&db).unwrap();
            let s = Ais::new(MinSupport::Count(min)).mine(&db).unwrap();
            assert_eq!(a.itemsets, t.itemsets, "min {min}");
            assert_eq!(a.itemsets, s.itemsets, "min {min}");
        }
    }

    #[test]
    fn ais_counts_more_candidates_than_apriori() {
        // The defining inefficiency: AIS extends per transaction, so its
        // pass-2 candidate set includes pairs Apriori never generates
        // (extensions of frequent items with infrequent items).
        let db = TransactionDb::new(vec![
            vec![0, 1, 7],
            vec![0, 1, 8],
            vec![0, 1, 9],
            vec![0, 1],
        ]);
        let a = Apriori::new(MinSupport::Count(2)).mine(&db).unwrap();
        let s = Ais::new(MinSupport::Count(2)).mine(&db).unwrap();
        assert_eq!(a.itemsets, s.itemsets);
        let a_pass2 = a.stats.passes[1].candidates;
        let s_pass2 = s.stats.passes[1].candidates;
        assert!(
            s_pass2 > a_pass2,
            "AIS candidates {s_pass2} should exceed Apriori's {a_pass2}"
        );
    }

    #[test]
    fn max_len_and_empty_db() {
        let r = Ais::new(MinSupport::Count(2))
            .with_max_len(1)
            .mine(&paper_db())
            .unwrap();
        assert_eq!(r.itemsets.max_len(), 1);
        let empty = TransactionDb::new(vec![]);
        assert!(Ais::new(MinSupport::Count(1))
            .mine(&empty)
            .unwrap()
            .itemsets
            .is_empty());
    }
}
