//! Association-rule generation (`ap-genrules`).

use crate::candidate::apriori_gen;
use crate::itemsets::{FrequentItemsets, Itemset};
use dm_dataset::DataError;
use std::fmt;

/// An association rule `antecedent ⇒ consequent` with its quality
/// measures. Antecedent and consequent are disjoint sorted itemsets whose
/// union is a frequent itemset.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Left-hand side (non-empty).
    pub antecedent: Itemset,
    /// Right-hand side (non-empty).
    pub consequent: Itemset,
    /// Relative support of antecedent ∪ consequent.
    pub support: f64,
    /// `supp(A ∪ C) / supp(A)`.
    pub confidence: f64,
    /// `confidence / supp(C)` — > 1 means positive correlation.
    pub lift: f64,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} => {:?} (supp {:.4}, conf {:.4}, lift {:.2})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

/// Generates confidence-filtered rules from mined frequent itemsets using
/// the `ap-genrules` recursion of Agrawal & Srikant: consequents grow
/// level-wise, and a consequent whose rule misses the confidence bar is
/// never extended (confidence is anti-monotone in the consequent).
#[derive(Debug, Clone)]
pub struct RuleGenerator {
    min_confidence: f64,
}

impl RuleGenerator {
    /// Creates a generator with a confidence threshold in `[0, 1]`.
    pub fn new(min_confidence: f64) -> Self {
        Self { min_confidence }
    }

    /// Generates all rules meeting the confidence threshold, ordered by
    /// descending confidence (ties: descending support, then
    /// lexicographic antecedent).
    pub fn generate(&self, itemsets: &FrequentItemsets) -> Result<Vec<Rule>, DataError> {
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(DataError::InvalidParameter(format!(
                "min_confidence {} not in [0, 1]",
                self.min_confidence
            )));
        }
        let n = itemsets.n_transactions() as f64;
        if n == 0.0 {
            return Ok(Vec::new());
        }
        let mut rules = Vec::new();
        for size in 2..=itemsets.max_len() {
            for (items, count) in itemsets.level(size) {
                self.rules_for_itemset(itemsets, items, *count, &mut rules);
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.support.total_cmp(&a.support))
                .then(a.antecedent.cmp(&b.antecedent))
                .then(a.consequent.cmp(&b.consequent))
        });
        Ok(rules)
    }

    /// Expands rules for one frequent itemset, growing consequents
    /// level-wise with `apriori-gen` over the surviving consequents.
    fn rules_for_itemset(
        &self,
        itemsets: &FrequentItemsets,
        items: &Itemset,
        count: usize,
        out: &mut Vec<Rule>,
    ) {
        let n = itemsets.n_transactions() as f64;
        let support = count as f64 / n;
        // Level 1: single-item consequents.
        let mut consequents: Vec<Itemset> = items.iter().map(|&i| vec![i]).collect();
        while !consequents.is_empty() {
            let mut survivors: Vec<Itemset> = Vec::new();
            for consequent in consequents {
                if consequent.len() >= items.len() {
                    continue; // antecedent must be non-empty
                }
                let antecedent: Itemset = items
                    .iter()
                    .copied()
                    .filter(|i| !consequent.contains(i))
                    .collect();
                // Downward closure guarantees both lookups succeed on a
                // complete mining result; a truncated one may lack the
                // subset, in which case the rule is simply not emitted.
                let Some(ante_count) = itemsets.support_count(&antecedent) else {
                    continue;
                };
                let confidence = count as f64 / ante_count as f64;
                if confidence >= self.min_confidence {
                    let Some(cons_count) = itemsets.support_count(&consequent) else {
                        continue;
                    };
                    out.push(Rule {
                        antecedent,
                        consequent: consequent.clone(),
                        support,
                        confidence,
                        lift: confidence / (cons_count as f64 / n),
                    });
                    survivors.push(consequent);
                }
            }
            survivors.sort();
            consequents = apriori_gen(&survivors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, ItemsetMiner, MinSupport};
    use dm_dataset::TransactionDb;

    fn mined() -> FrequentItemsets {
        let db = TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ]);
        Apriori::new(MinSupport::Count(2))
            .mine(&db)
            .unwrap()
            .itemsets
    }

    #[test]
    fn high_confidence_rules() {
        let rules = RuleGenerator::new(1.0).generate(&mined()).unwrap();
        // Rules with confidence exactly 1.0 from the paper database:
        // {1}=>{3}, {2}=>{5}, {5}=>{2}, {1,3}? supp{1,3}=2 ... check a few.
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![1] && r.consequent == vec![3]));
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![2] && r.consequent == vec![5]));
        assert!(rules.iter().all(|r| r.confidence >= 1.0 - 1e-12));
    }

    #[test]
    fn confidence_and_lift_values() {
        let rules = RuleGenerator::new(0.5).generate(&mined()).unwrap();
        // {3}=>{2}: supp({2,3})=2, supp({3})=3 -> conf 2/3; supp({2})=3/4
        // -> lift (2/3)/(3/4) = 8/9.
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec![3] && r.consequent == vec![2])
            .expect("rule present");
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.support - 0.5).abs() < 1e-12);
        assert!((r.lift - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn multi_item_consequents_generated() {
        let rules = RuleGenerator::new(0.5).generate(&mined()).unwrap();
        // {2,3,5} is frequent: rule {3} => {2,5} has conf supp(235)/supp(3)
        // = 2/3 ≥ 0.5 and must appear via the consequent-growing pass.
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![3] && r.consequent == vec![2, 5]));
    }

    #[test]
    fn rule_count_grows_as_confidence_falls() {
        let f = mined();
        let high = RuleGenerator::new(0.9).generate(&f).unwrap().len();
        let mid = RuleGenerator::new(0.7).generate(&f).unwrap().len();
        let low = RuleGenerator::new(0.5).generate(&f).unwrap().len();
        assert!(high <= mid && mid <= low);
        assert!(low > high, "threshold must have an effect");
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let rules = RuleGenerator::new(0.3).generate(&mined()).unwrap();
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn antecedent_and_consequent_partition_the_itemset() {
        let rules = RuleGenerator::new(0.3).generate(&mined()).unwrap();
        for r in &rules {
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            let mut union: Itemset = r.antecedent.iter().chain(&r.consequent).copied().collect();
            union.sort_unstable();
            let dup_free = union.windows(2).all(|w| w[0] < w[1]);
            assert!(dup_free, "antecedent and consequent overlap: {r}");
            assert!(mined().support_count(&union).is_some());
        }
    }

    #[test]
    fn invalid_confidence_rejected() {
        assert!(RuleGenerator::new(-0.1).generate(&mined()).is_err());
        assert!(RuleGenerator::new(1.1).generate(&mined()).is_err());
    }

    #[test]
    fn empty_itemsets_yield_no_rules() {
        let empty = FrequentItemsets::from_levels(vec![], 0);
        assert!(RuleGenerator::new(0.5).generate(&empty).unwrap().is_empty());
    }

    #[test]
    fn display_format() {
        let rules = RuleGenerator::new(0.9).generate(&mined()).unwrap();
        let s = rules[0].to_string();
        assert!(s.contains("=>"));
        assert!(s.contains("conf"));
    }
}
