//! The AprioriTid algorithm (Agrawal & Srikant, VLDB 1994).
//!
//! AprioriTid generates candidates exactly like Apriori but, after pass
//! 1, never rescans the raw database: it maintains `C̄_k`, a per-
//! transaction list of the candidate ids the transaction contains. A
//! size-`k+1` candidate is contained in a transaction iff both of its
//! size-`k` generators are in the transaction's list, so each pass is a
//! join over the (shrinking) `C̄` representation. Transactions whose
//! lists empty out are dropped entirely — the behaviour that makes the
//! algorithm fast in late passes and memory-hungry in pass 2.

use crate::apriori::POLL_STRIDE;
use crate::candidate::{apriori_gen, gen_pairs};
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome};
use dm_obs::HeapSize;
use std::collections::HashMap;
use std::time::Instant;

/// Frequent-itemset miner using the candidate-id list representation.
#[derive(Debug, Clone)]
pub struct AprioriTid {
    min_support: MinSupport,
    max_len: Option<usize>,
}

impl AprioriTid {
    /// Creates a miner with the given threshold.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            max_len: None,
        }
    }

    /// Stops after mining itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }
}

impl ItemsetMiner for AprioriTid {
    fn name(&self) -> &'static str {
        "apriori-tid"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let mut stats = MiningStats::default();
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let obs = guard.obs();
        if obs.enabled() {
            // The VLDB'94 comparison point: C̄_k is "large" or "small"
            // relative to the raw transaction buffers.
            obs.gauge_max("assoc.mem.db_bytes", db.transactions().heap_bytes() as f64);
        }

        // A trip anywhere inside a pass discards that pass; `levels`
        // only ever holds fully joined passes (see the trait docs).
        'mine: {
            // ---- Pass 1: dense item counting + initial C̄_1. ----
            let pass1_span = obs.span("assoc.apriori_tid.pass1");
            let t0 = Instant::now();
            if guard.try_work(u64::from(db.n_items())).is_err() {
                break 'mine;
            }
            let mut counts = vec![0usize; db.n_items() as usize];
            for (t, txn) in db.iter().enumerate() {
                if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    break 'mine;
                }
                for &item in txn {
                    counts[item as usize] += 1;
                }
            }
            let l1: Vec<(Itemset, usize)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= min_count)
                .map(|(item, &c)| (vec![item as u32], c))
                .collect();
            // Dense id per frequent item.
            let mut item_id = vec![u32::MAX; db.n_items() as usize];
            for (id, (items, _)) in l1.iter().enumerate() {
                item_id[items[0] as usize] = id as u32;
            }
            // C̄_1: per transaction, the (sorted) ids of its frequent items.
            let mut tidlists: Vec<Vec<u32>> = db
                .iter()
                .map(|txn| {
                    txn.iter()
                        .map(|&i| item_id[i as usize])
                        .filter(|&id| id != u32::MAX)
                        .collect::<Vec<u32>>()
                })
                .filter(|ids: &Vec<u32>| !ids.is_empty())
                .collect();
            if obs.enabled() {
                let ck = tidlists.heap_bytes() as f64;
                obs.gauge_max("assoc.apriori_tid.pass1.ck_mem_bytes", ck);
                obs.gauge_max("assoc.mem.ck_bytes", ck);
            }
            drop(pass1_span);
            stats.push(1, db.n_items() as usize, l1.len(), t0.elapsed());
            levels.push(l1);

            // ---- Passes k ≥ 2 over the C̄ representation. ----
            let mut k = 1usize;
            // Stamp array marking which previous-level ids the current
            // transaction contains (generation-stamped to avoid clearing).
            let mut stamp: Vec<u32> = Vec::new();
            loop {
                if self.max_len.is_some_and(|m| k >= m) {
                    break;
                }
                let prev = &levels[k - 1];
                if prev.len() < 2 {
                    break;
                }
                let t0 = Instant::now();
                let pass_span = obs.span_fmt(format_args!("assoc.apriori_tid.pass{}", k + 1));
                let prev_sets: Vec<Itemset> = prev.iter().map(|(i, _)| i.clone()).collect();
                let candidates = if k == 1 {
                    gen_pairs(&prev_sets.iter().map(|i| i[0]).collect::<Vec<_>>())
                } else {
                    apriori_gen(&prev_sets)
                };
                if candidates.is_empty() {
                    break;
                }
                let n_candidates = candidates.len();
                if guard.try_work(n_candidates as u64).is_err() {
                    break 'mine;
                }

                // Each candidate's two generators as dense prev-level ids.
                let prev_id: HashMap<&[u32], u32> = prev_sets
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_slice(), i as u32))
                    .collect();
                let mut generators: Vec<(u32, u32)> = Vec::with_capacity(candidates.len());
                // Candidates grouped by first generator for the per-txn probe.
                let mut by_g1: Vec<Vec<u32>> = vec![Vec::new(); prev_sets.len()];
                for (cid, cand) in candidates.iter().enumerate() {
                    let n = cand.len();
                    let mut g1: Itemset = cand.clone();
                    g1.remove(n - 1); // drop last item
                    let mut g2: Itemset = cand.clone();
                    g2.remove(n - 2); // drop second-to-last item
                    let id1 = prev_id[g1.as_slice()];
                    let id2 = prev_id[g2.as_slice()];
                    generators.push((id1, id2));
                    by_g1[id1 as usize].push(cid as u32);
                }

                // Join pass over C̄_{k-1}.
                stamp.clear();
                stamp.resize(prev_sets.len(), u32::MAX);
                let mut cand_counts = vec![0usize; candidates.len()];
                let mut next_tidlists: Vec<Vec<u32>> = Vec::with_capacity(tidlists.len());
                for (gen, ids) in tidlists.iter().enumerate() {
                    if gen.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break 'mine;
                    }
                    let gen = gen as u32;
                    for &id in ids {
                        stamp[id as usize] = gen;
                    }
                    let mut present: Vec<u32> = Vec::new();
                    for &id in ids {
                        for &cid in &by_g1[id as usize] {
                            let (_, g2) = generators[cid as usize];
                            if stamp[g2 as usize] == gen {
                                cand_counts[cid as usize] += 1;
                                present.push(cid);
                            }
                        }
                    }
                    if !present.is_empty() {
                        present.sort_unstable();
                        next_tidlists.push(present);
                    }
                }

                if obs.enabled() {
                    // Measure C̄_{k+1} at its peak: after the join, before
                    // infrequent candidates are filtered out — this is the
                    // structure the paper's pass-2 memory blow-up is about.
                    let ck = next_tidlists.heap_bytes() as f64;
                    obs.gauge_max_fmt(
                        format_args!("assoc.apriori_tid.pass{}.ck_mem_bytes", k + 1),
                        ck,
                    );
                    obs.gauge_max("assoc.mem.ck_bytes", ck);
                }

                // Filter to the frequent candidates and remap ids densely.
                let mut keep: Vec<u32> = Vec::new();
                let mut new_id = vec![u32::MAX; candidates.len()];
                let mut lk: Vec<(Itemset, usize)> = Vec::new();
                for (cid, cand) in candidates.into_iter().enumerate() {
                    if cand_counts[cid] >= min_count {
                        new_id[cid] = keep.len() as u32;
                        keep.push(cid as u32);
                        lk.push((cand, cand_counts[cid]));
                    }
                }
                for ids in &mut next_tidlists {
                    ids.retain_mut(|cid| {
                        let mapped = new_id[*cid as usize];
                        if mapped == u32::MAX {
                            false
                        } else {
                            *cid = mapped;
                            true
                        }
                    });
                }
                next_tidlists.retain(|ids| !ids.is_empty());
                tidlists = next_tidlists;

                drop(pass_span);
                stats.push(k + 1, n_candidates, lk.len(), t0.elapsed());
                let done = lk.is_empty();
                levels.push(lk);
                k += 1;
                if done || tidlists.is_empty() {
                    break;
                }
            }
        }

        stats.record_to(guard.obs(), "apriori_tid");
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(levels, db.len()),
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apriori;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_paper_example() {
        let result = AprioriTid::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap();
        let f = &result.itemsets;
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert_eq!(f.support_count(&[2, 3, 5]), Some(2));
        assert!(f.verify_downward_closure());
    }

    #[test]
    fn agrees_with_apriori_on_paper_db() {
        let db = paper_db();
        for min in 1..=4 {
            let a = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
            let b = AprioriTid::new(MinSupport::Count(min)).mine(&db).unwrap();
            assert_eq!(a.itemsets, b.itemsets, "min_count {min}");
        }
    }

    #[test]
    fn candidate_counts_match_apriori() {
        // The candidate sets are identical by construction; the per-pass
        // stats must agree on candidate and frequent counts.
        let db = paper_db();
        let a = Apriori::new(MinSupport::Count(2)).mine(&db).unwrap();
        let b = AprioriTid::new(MinSupport::Count(2)).mine(&db).unwrap();
        for (pa, pb) in a.stats.passes.iter().zip(&b.stats.passes) {
            assert_eq!(pa.candidates, pb.candidates, "pass {}", pa.pass);
            assert_eq!(pa.frequent, pb.frequent, "pass {}", pa.pass);
        }
    }

    #[test]
    fn empty_and_degenerate_databases() {
        let empty = TransactionDb::new(vec![]);
        assert!(AprioriTid::new(MinSupport::Count(1))
            .mine(&empty)
            .unwrap()
            .itemsets
            .is_empty());
        let singles = TransactionDb::new(vec![vec![0], vec![1]]);
        let r = AprioriTid::new(MinSupport::Count(1))
            .mine(&singles)
            .unwrap();
        assert_eq!(r.itemsets.max_len(), 1);
    }

    #[test]
    fn max_len_respected() {
        let r = AprioriTid::new(MinSupport::Count(2))
            .with_max_len(2)
            .mine(&paper_db())
            .unwrap();
        assert_eq!(r.itemsets.max_len(), 2);
    }
}
