//! The [`FrequentItemsets`] result container.

use std::collections::HashMap;

/// An itemset: a sorted, duplicate-free vector of item ids.
pub type Itemset = Vec<u32>;

/// All frequent itemsets mined from one database, organized by size
/// ("level" in the level-wise algorithms), with absolute support counts.
///
/// Every miner in this crate produces a `FrequentItemsets`; two runs over
/// the same database with the same threshold must produce equal values
/// regardless of the algorithm (enforced by the cross-algorithm tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemsets {
    /// `levels[k-1]` holds the frequent k-itemsets, lexicographically
    /// sorted, paired with their absolute support counts.
    levels: Vec<Vec<(Itemset, usize)>>,
    /// Itemset → support index for O(1) lookup.
    index: HashMap<Itemset, usize>,
    /// Number of transactions in the mined database.
    n_transactions: usize,
}

impl FrequentItemsets {
    /// Assembles the container from per-level `(itemset, count)` lists.
    ///
    /// Levels are sorted internally; empty trailing levels are trimmed.
    pub fn from_levels(mut levels: Vec<Vec<(Itemset, usize)>>, n_transactions: usize) -> Self {
        while levels.last().is_some_and(Vec::is_empty) {
            levels.pop();
        }
        let mut index = HashMap::new();
        for level in &mut levels {
            level.sort();
            for (items, count) in level.iter() {
                debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "itemsets sorted");
                index.insert(items.clone(), *count);
            }
        }
        Self {
            levels,
            index,
            n_transactions,
        }
    }

    /// Number of transactions in the mined database.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// The largest frequent itemset size (0 when nothing is frequent).
    pub fn max_len(&self) -> usize {
        self.levels.len()
    }

    /// Total number of frequent itemsets across all levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether no itemset is frequent.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The frequent k-itemsets (sorted), or an empty slice.
    pub fn level(&self, k: usize) -> &[(Itemset, usize)] {
        if k == 0 || k > self.levels.len() {
            &[]
        } else {
            &self.levels[k - 1]
        }
    }

    /// Number of frequent k-itemsets.
    pub fn level_len(&self, k: usize) -> usize {
        self.level(k).len()
    }

    /// Absolute support count of `itemset`, or `None` if not frequent.
    pub fn support_count(&self, itemset: &[u32]) -> Option<usize> {
        self.index.get(itemset).copied()
    }

    /// Relative support of `itemset`, or `None` if not frequent.
    pub fn support(&self, itemset: &[u32]) -> Option<f64> {
        self.support_count(itemset)
            .map(|c| c as f64 / self.n_transactions.max(1) as f64)
    }

    /// Frequent single items ordered by descending support (ties by
    /// ascending item id) — the degraded-recommendation vocabulary a
    /// server falls back to when rule scanning trips its deadline.
    pub fn singletons_by_support(&self) -> Vec<(u32, usize)> {
        let mut out: Vec<(u32, usize)> = self
            .level(1)
            .iter()
            .filter_map(|(items, count)| items.first().map(|&item| (item, *count)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Iterates all `(itemset, count)` pairs, smallest itemsets first.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, usize)> {
        self.levels
            .iter()
            .flat_map(|l| l.iter().map(|(i, c)| (i, *c)))
    }

    /// Checks downward closure: every proper subset of every frequent
    /// itemset is itself present with at least the superset's support.
    /// Used by the property tests.
    pub fn verify_downward_closure(&self) -> bool {
        for (items, count) in self.iter() {
            if items.len() < 2 {
                continue;
            }
            for skip in 0..items.len() {
                let subset: Itemset = items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &x)| x)
                    .collect();
                match self.support_count(&subset) {
                    Some(sub_count) if sub_count >= count => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FrequentItemsets {
        FrequentItemsets::from_levels(
            vec![
                vec![(vec![1], 2), (vec![2], 3), (vec![3], 3), (vec![5], 3)],
                vec![
                    (vec![1, 3], 2),
                    (vec![2, 3], 2),
                    (vec![2, 5], 3),
                    (vec![3, 5], 2),
                ],
                vec![(vec![2, 3, 5], 2)],
            ],
            4,
        )
    }

    #[test]
    fn shape_accessors() {
        let f = sample();
        assert_eq!(f.max_len(), 3);
        assert_eq!(f.len(), 9);
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert_eq!(f.level_len(4), 0);
        assert_eq!(f.level(0), &[]);
        assert!(!f.is_empty());
    }

    #[test]
    fn support_lookup() {
        let f = sample();
        assert_eq!(f.support_count(&[2, 5]), Some(3));
        assert_eq!(f.support(&[2, 5]), Some(0.75));
        assert_eq!(f.support_count(&[1, 2]), None);
    }

    #[test]
    fn trailing_empty_levels_trimmed() {
        let f = FrequentItemsets::from_levels(vec![vec![(vec![0], 1)], vec![], vec![]], 3);
        assert_eq!(f.max_len(), 1);
    }

    #[test]
    fn downward_closure_detects_violations() {
        assert!(sample().verify_downward_closure());
        let bad = FrequentItemsets::from_levels(
            vec![vec![(vec![1], 5)], vec![(vec![1, 2], 3)]], // {2} missing
            10,
        );
        assert!(!bad.verify_downward_closure());
        let bad_count = FrequentItemsets::from_levels(
            vec![
                vec![(vec![1], 2), (vec![2], 5)],
                vec![(vec![1, 2], 3)], // supp({1,2}) > supp({1})
            ],
            10,
        );
        assert!(!bad_count.verify_downward_closure());
    }

    #[test]
    fn iter_orders_small_to_large() {
        let sizes: Vec<usize> = sample().iter().map(|(i, _)| i.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_result() {
        let f = FrequentItemsets::from_levels(vec![], 0);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(f.verify_downward_closure());
    }
}
