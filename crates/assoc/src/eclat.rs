//! Eclat (Zaki, IEEE TKDE 2000): frequent-itemset mining over the
//! **vertical** database layout.
//!
//! Where the Apriori family scans horizontal transactions against
//! candidate sets, Eclat materializes one tid-column per item
//! ([`dm_dataset::VerticalDb`]) and walks prefix equivalence classes
//! depth-first: the support of `P ∪ {a, b}` is the size of the
//! intersection of the tid-sets of `P ∪ {a}` and `P ∪ {b}`. Columns are
//! word-packed bitsets when dense (AND + popcount) and sorted tid-lists
//! when sparse (galloping intersection), with the representation chosen
//! per column by [`dm_dataset::vertical::DENSE_CUTOVER`].
//!
//! ## Governance
//!
//! The truncation unit is the **top-level branch**: all itemsets whose
//! *smallest* item is `i` are mined while expanding `i`'s branch, and
//! branches run in descending item order, each all-or-nothing. Every
//! proper subset of an emitted itemset either keeps the branch's minimum
//! item (same branch, which completed) or drops it (a higher minimum —
//! an earlier branch), so a truncated result stays downward closed. The
//! guard's work unit is one tid-set intersection — one candidate
//! admitted to counting — batched per equivalence class so sequential
//! and threaded runs admit identically.

use crate::apriori::POLL_STRIDE;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::{DataError, TidSet, TransactionDb, VerticalDb};
use dm_guard::{Guard, Outcome, TruncationReason};
use dm_obs::HeapSize;
use dm_par::{par_map_indexed, Parallelism};
use std::borrow::Borrow;
use std::time::Instant;

/// Extension batches at least this large are spread across threads (the
/// per-intersection cost is too small to amortize a join below it).
const PAR_BATCH_MIN: usize = 64;

/// Everything the recursive expansion needs, bundled so the recursion
/// signature stays readable.
struct EclatCtx<'a> {
    n_rows: usize,
    min_count: usize,
    parallelism: Parallelism,
    guard: &'a Guard,
    levels: Vec<Vec<(Itemset, usize)>>,
    /// Intersections attempted per result size (index = size - 1).
    cand_by_size: Vec<u64>,
    intersections: u64,
    max_depth: usize,
}

impl EclatCtx<'_> {
    fn note_candidates(&mut self, size: usize, n: usize) {
        while self.cand_by_size.len() < size {
            self.cand_by_size.push(0);
        }
        self.cand_by_size[size - 1] += n as u64;
        self.intersections += n as u64;
    }

    fn emit(&mut self, items: Itemset, count: usize) {
        let k = items.len();
        while self.levels.len() < k {
            self.levels.push(Vec::new());
        }
        self.levels[k - 1].push((items, count));
    }
}

/// The Eclat miner. Produces [`FrequentItemsets`] bit-identical to the
/// Apriori family's and to FP-Growth's (the equivalence tests enforce
/// it).
#[derive(Debug, Clone)]
pub struct Eclat {
    min_support: MinSupport,
    parallelism: Parallelism,
}

impl Eclat {
    /// Creates an Eclat miner with the given threshold.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Sets how intersection batches are spread across threads. The
    /// batch is admitted to the guard up front and mapped
    /// order-preservingly, so results are bit-identical for every
    /// setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Expands one prefix-class pivot: intersects `pivot`'s tid-set with
    /// every class sibling after it, emits the frequent extensions, and
    /// recurses into the surviving class. `prefix` holds the items of
    /// the current prefix *excluding* the pivot.
    fn expand_pivot<S: Borrow<TidSet> + Sync>(
        ctx: &mut EclatCtx<'_>,
        pivot_item: u32,
        pivot_set: &TidSet,
        exts: &[(u32, S)],
        prefix: &mut Vec<u32>,
    ) -> Result<(), TruncationReason> {
        if exts.is_empty() {
            return Ok(());
        }
        // One unit per intersection, admitted as a batch BEFORE the work
        // so sequential and threaded runs charge the guard identically.
        ctx.guard.try_work(exts.len() as u64)?;
        prefix.push(pivot_item);
        ctx.max_depth = ctx.max_depth.max(prefix.len());
        ctx.note_candidates(prefix.len() + 1, exts.len());
        let n_rows = ctx.n_rows;
        let sets: Vec<TidSet> = if exts.len() >= PAR_BATCH_MIN {
            par_map_indexed(ctx.parallelism, exts, |_, (_, s)| {
                pivot_set.intersect(s.borrow(), n_rows)
            })
        } else {
            exts.iter()
                .map(|(_, s)| pivot_set.intersect(s.borrow(), n_rows))
                .collect()
        };
        let mut class: Vec<(u32, TidSet)> = Vec::new();
        for ((item, _), set) in exts.iter().zip(sets) {
            if set.support() >= ctx.min_count {
                let mut items: Itemset = prefix.clone();
                items.push(*item);
                ctx.emit(items, set.support());
                class.push((*item, set));
            }
        }
        for i in 0..class.len().saturating_sub(1) {
            let (item, set) = (class[i].0, &class[i].1);
            Self::expand_pivot(ctx, item, set, &class[i + 1..], prefix)?;
        }
        prefix.pop();
        Ok(())
    }
}

impl ItemsetMiner for Eclat {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let obs = guard.obs();
        if obs.enabled() {
            obs.gauge_max("assoc.mem.db_bytes", db.transactions().heap_bytes() as f64);
        }
        let mut ctx = EclatCtx {
            n_rows: db.len(),
            min_count,
            parallelism: self.parallelism,
            guard,
            levels: Vec::new(),
            cand_by_size: Vec::new(),
            intersections: 0,
            max_depth: 0,
        };
        let t0 = Instant::now();
        let mut build_time = std::time::Duration::ZERO;

        'mine: {
            // Materializing the vertical layout counts every singleton:
            // one unit per item, like the horizontal miners' pass 1.
            if guard.try_work(u64::from(db.n_items())).is_err() {
                break 'mine;
            }
            ctx.note_candidates(1, db.n_items() as usize);
            let vertical = {
                let _build = obs.span("assoc.eclat.build");
                VerticalDb::from_db_interruptible(db, POLL_STRIDE, || guard.should_stop())
            };
            let Some(vertical) = vertical else {
                break 'mine;
            };
            build_time = t0.elapsed();
            if obs.enabled() {
                obs.gauge_max("assoc.mem.vertical_bytes", vertical.heap_bytes() as f64);
            }
            // L1 and the base equivalence class, ascending by item id so
            // DFS emissions come out with sorted members.
            let base: Vec<(u32, &TidSet)> = (0..vertical.n_items() as u32)
                .map(|item| (item, vertical.column(item)))
                .filter(|(_, set)| set.support() >= min_count)
                .collect();
            ctx.levels.push(
                base.iter()
                    .map(|&(item, set)| (vec![item], set.support()))
                    .collect(),
            );

            // Top-level branches in DESCENDING item order, each
            // all-or-nothing: on a trip the current branch rolls back
            // and the completed (higher-item) branches remain (see
            // module docs for why that is downward closed).
            let _mine = obs.span("assoc.eclat.mine");
            for bi in (0..base.len()).rev() {
                let marks: Vec<usize> = ctx.levels.iter().map(Vec::len).collect();
                let (item, set) = base[bi];
                let mut prefix: Vec<u32> = Vec::with_capacity(8);
                if Self::expand_pivot(&mut ctx, item, set, &base[bi + 1..], &mut prefix).is_err() {
                    for (level, mark) in ctx.levels.iter_mut().zip(marks) {
                        level.truncate(mark);
                    }
                    break 'mine;
                }
            }
        }

        let mut stats = MiningStats::default();
        let n_passes = ctx.levels.len().max(if ctx.cand_by_size.is_empty() {
            0
        } else {
            ctx.cand_by_size.len()
        });
        for k in 0..n_passes {
            let candidates = ctx.cand_by_size.get(k).copied().unwrap_or(0) as usize;
            let frequent = ctx.levels.get(k).map(Vec::len).unwrap_or(0);
            let d = if k == 0 {
                build_time
            } else {
                std::time::Duration::ZERO
            };
            stats.push(k + 1, candidates, frequent, d);
        }
        stats.record_to(obs, "eclat");
        if obs.enabled() {
            obs.counter("assoc.eclat.intersections", ctx.intersections);
            obs.gauge_max("assoc.eclat.max_depth", ctx.max_depth as f64);
        }
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(ctx.levels, db.len()),
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn mines_the_paper_example() {
        let result = Eclat::new(MinSupport::Count(2)).mine(&paper_db()).unwrap();
        let f = &result.itemsets;
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert_eq!(f.support_count(&[2, 3, 5]), Some(2));
        assert_eq!(f.support_count(&[1, 3]), Some(2));
        assert_eq!(f.support_count(&[1, 2]), None);
        assert!(f.verify_downward_closure());
    }

    #[test]
    fn matches_apriori_on_the_paper_example() {
        let db = paper_db();
        for min in 1..=4usize {
            let ec = Eclat::new(MinSupport::Count(min)).mine(&db).unwrap();
            let ap = crate::Apriori::new(MinSupport::Count(min))
                .mine(&db)
                .unwrap();
            assert_eq!(ec.itemsets, ap.itemsets, "min_count {min}");
        }
    }

    #[test]
    fn parallel_batches_match_sequential() {
        // Wide db whose top-level class crosses PAR_BATCH_MIN: ~1/4-density
        // hashed fill keeps most of the 80 items frequent at 10% support
        // while pair supports stay low enough to bound the search.
        let db = TransactionDb::new(
            (0..200u32)
                .map(|t| {
                    (0..80u32)
                        .filter(|&i| {
                            let x = t.wrapping_mul(0x9E37_79B9) ^ i.wrapping_mul(0x85EB_CA6B);
                            (x >> 13) % 4 == 0
                        })
                        .collect()
                })
                .collect(),
        );
        let seq = Eclat::new(MinSupport::Fraction(0.1)).mine(&db).unwrap();
        let par = Eclat::new(MinSupport::Fraction(0.1))
            .with_parallelism(Parallelism::Threads(4))
            .mine(&db)
            .unwrap();
        assert_eq!(seq.itemsets, par.itemsets);
    }

    #[test]
    fn stats_count_intersections_per_level() {
        let result = Eclat::new(MinSupport::Count(2)).mine(&paper_db()).unwrap();
        // Pass 1 "candidates" = every item column materialized.
        assert_eq!(result.stats.passes[0].candidates, 6);
        // Later passes: at least one intersection per frequent itemset.
        for p in &result.stats.passes[1..] {
            assert!(p.candidates >= p.frequent);
        }
    }

    #[test]
    fn empty_and_degenerate_databases() {
        let empty = TransactionDb::new(vec![]);
        let result = Eclat::new(MinSupport::Count(1)).mine(&empty).unwrap();
        assert!(result.itemsets.is_empty());

        let singletons = TransactionDb::new(vec![vec![0], vec![0], vec![1]]);
        let result = Eclat::new(MinSupport::Count(2)).mine(&singletons).unwrap();
        assert_eq!(result.itemsets.len(), 1);
        assert_eq!(result.itemsets.support_count(&[0]), Some(2));
    }
}
