//! Exhaustive reference miner used as the correctness oracle.

use crate::apriori::POLL_STRIDE;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome};
use std::time::Instant;

/// Upper bound on the item universe accepted by [`BruteForce`]; beyond
/// this the 2^N subset enumeration is infeasible and certainly a bug in
/// the caller.
pub const MAX_BRUTE_ITEMS: u32 = 20;

/// Enumerates *every* subset of the item universe and counts its support
/// with a full database scan. Exponential — only usable on tiny
/// universes, which is exactly its role: the oracle the property tests
/// compare the real miners against.
#[derive(Debug, Clone)]
pub struct BruteForce {
    min_support: MinSupport,
    max_len: Option<usize>,
}

impl BruteForce {
    /// Creates a reference miner with the given threshold.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            max_len: None,
        }
    }

    /// Stops after itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }
}

impl ItemsetMiner for BruteForce {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let n = db.n_items();
        if n > MAX_BRUTE_ITEMS {
            return Err(DataError::InvalidParameter(format!(
                "brute-force mining over {n} items would enumerate 2^{n} subsets \
                 (limit {MAX_BRUTE_ITEMS})"
            )));
        }
        let t0 = Instant::now();
        // Brute force is a single enumeration "pass" over all sizes.
        let pass_span = guard.obs().span("assoc.brute.pass1");
        let max_len = self.max_len.unwrap_or(n as usize).min(n as usize);
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let mut candidates_total = 0usize;
        // Enumerate subsets size-major (Gosper's hack walks the masks of
        // each popcount in order) so a budget trip discards at most the
        // level in flight and the surviving levels stay downward closed.
        'mine: for size in 1..=max_len {
            let level_candidates = binomial(n as u64, size as u64);
            if guard.try_work(level_candidates).is_err() {
                break 'mine;
            }
            let mut level: Vec<(Itemset, usize)> = Vec::new();
            let mut mask: u32 = (1u32 << size) - 1;
            let limit: u32 = 1u32 << n;
            let mut visited = 0usize;
            while mask < limit {
                if visited.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    break 'mine;
                }
                visited += 1;
                candidates_total += 1;
                let itemset: Itemset = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
                let count = db.support_count(&itemset);
                if count >= min_count {
                    level.push((itemset, count));
                }
                // Gosper's hack: next mask with the same popcount.
                let c = mask & mask.wrapping_neg();
                let r = mask + c;
                if r >= limit || c == 0 {
                    break;
                }
                mask = (((r ^ mask) >> 2) / c) | r;
            }
            let done = level.is_empty();
            levels.push(level);
            if done {
                break;
            }
        }
        drop(pass_span);
        let itemsets = FrequentItemsets::from_levels(levels, db.len());
        let mut stats = MiningStats::default();
        stats.push(1, candidates_total, itemsets.len(), t0.elapsed());
        stats.record_to(guard.obs(), "brute");
        Ok(guard.outcome(MiningResult { itemsets, stats }))
    }
}

/// `C(n, k)` without overflow for the tiny universes brute force allows.
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_paper_example() {
        let f = BruteForce::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap()
            .itemsets;
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert!(f.verify_downward_closure());
    }

    #[test]
    fn rejects_large_universes() {
        let db = TransactionDb::new(vec![vec![0, 25]]);
        assert!(BruteForce::new(MinSupport::Count(1)).mine(&db).is_err());
    }

    #[test]
    fn max_len_cap() {
        let f = BruteForce::new(MinSupport::Count(2))
            .with_max_len(1)
            .mine(&paper_db())
            .unwrap()
            .itemsets;
        assert_eq!(f.max_len(), 1);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::new(vec![]);
        let f = BruteForce::new(MinSupport::Count(1))
            .mine(&db)
            .unwrap()
            .itemsets;
        assert!(f.is_empty());
    }
}
