//! Exhaustive reference miner used as the correctness oracle.

use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::{DataError, TransactionDb};
use std::time::Instant;

/// Upper bound on the item universe accepted by [`BruteForce`]; beyond
/// this the 2^N subset enumeration is infeasible and certainly a bug in
/// the caller.
pub const MAX_BRUTE_ITEMS: u32 = 20;

/// Enumerates *every* subset of the item universe and counts its support
/// with a full database scan. Exponential — only usable on tiny
/// universes, which is exactly its role: the oracle the property tests
/// compare the real miners against.
#[derive(Debug, Clone)]
pub struct BruteForce {
    min_support: MinSupport,
    max_len: Option<usize>,
}

impl BruteForce {
    /// Creates a reference miner with the given threshold.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            max_len: None,
        }
    }

    /// Stops after itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }
}

impl ItemsetMiner for BruteForce {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn mine(&self, db: &TransactionDb) -> Result<MiningResult, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let n = db.n_items();
        if n > MAX_BRUTE_ITEMS {
            return Err(DataError::InvalidParameter(format!(
                "brute-force mining over {n} items would enumerate 2^{n} subsets \
                 (limit {MAX_BRUTE_ITEMS})"
            )));
        }
        let t0 = Instant::now();
        let max_len = self.max_len.unwrap_or(n as usize);
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let mut candidates_total = 0usize;
        // Enumerate subsets as bitmasks, bucketed by popcount.
        for mask in 1u32..(1u32 << n) {
            let size = mask.count_ones() as usize;
            if size > max_len {
                continue;
            }
            candidates_total += 1;
            let itemset: Itemset = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let count = db.support_count(&itemset);
            if count >= min_count {
                while levels.len() < size {
                    levels.push(Vec::new());
                }
                levels[size - 1].push((itemset, count));
            }
        }
        let itemsets = FrequentItemsets::from_levels(levels, db.len());
        let mut stats = MiningStats::default();
        stats.push(1, candidates_total, itemsets.len(), t0.elapsed());
        Ok(MiningResult { itemsets, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_paper_example() {
        let f = BruteForce::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap()
            .itemsets;
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert!(f.verify_downward_closure());
    }

    #[test]
    fn rejects_large_universes() {
        let db = TransactionDb::new(vec![vec![0, 25]]);
        assert!(BruteForce::new(MinSupport::Count(1)).mine(&db).is_err());
    }

    #[test]
    fn max_len_cap() {
        let f = BruteForce::new(MinSupport::Count(2))
            .with_max_len(1)
            .mine(&paper_db())
            .unwrap()
            .itemsets;
        assert_eq!(f.max_len(), 1);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::new(vec![]);
        let f = BruteForce::new(MinSupport::Count(1))
            .mine(&db)
            .unwrap()
            .itemsets;
        assert!(f.is_empty());
    }
}
