//! Per-pass work statistics, the raw material of experiments E1–E4.

use std::fmt;
use std::time::Duration;

/// Work performed in one level-wise pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Pass number (itemset size), 1-based.
    pub pass: usize,
    /// Number of candidate itemsets counted this pass.
    pub candidates: usize,
    /// Number of candidates that turned out frequent.
    pub frequent: usize,
    /// Wall-clock time spent in the pass.
    pub duration: Duration,
}

/// Statistics for a whole mining run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// One entry per executed pass, in order.
    pub passes: Vec<PassStats>,
}

impl MiningStats {
    /// Records a pass.
    pub fn push(&mut self, pass: usize, candidates: usize, frequent: usize, duration: Duration) {
        self.passes.push(PassStats {
            pass,
            candidates,
            frequent,
            duration,
        });
    }

    /// Number of passes executed.
    pub fn n_passes(&self) -> usize {
        self.passes.len()
    }

    /// Total candidates counted across passes.
    pub fn total_candidates(&self) -> usize {
        self.passes.iter().map(|p| p.candidates).sum()
    }

    /// Total frequent itemsets found.
    pub fn total_frequent(&self) -> usize {
        self.passes.iter().map(|p| p.frequent).sum()
    }

    /// Total wall-clock time across passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// Emits this run's per-pass work into a recorder under the names
    /// `assoc.<algo>.pass<k>.{candidates,frequent,pruned}` plus an
    /// `assoc.<algo>.passes` counter for the run (see the metric
    /// registry in `DESIGN.md`). Pass *timings* are not emitted here:
    /// the miners open live `assoc.<algo>.pass<k>` spans around each
    /// pass, which both populate the duration histograms and nest in
    /// the span tree — re-emitting the stored durations would double
    /// every pass in the histogram.
    ///
    /// `pruned` is the candidates that failed the support threshold —
    /// derived, but recorded explicitly so shape tests can assert on it
    /// without re-deriving.
    pub fn record_to(&self, obs: dm_obs::Obs<'_>, algo: &str) {
        if !obs.enabled() {
            return;
        }
        for p in &self.passes {
            let k = p.pass;
            obs.counter_fmt(
                format_args!("assoc.{algo}.pass{k}.candidates"),
                p.candidates as u64,
            );
            obs.counter_fmt(
                format_args!("assoc.{algo}.pass{k}.frequent"),
                p.frequent as u64,
            );
            obs.counter_fmt(
                format_args!("assoc.{algo}.pass{k}.pruned"),
                p.candidates.saturating_sub(p.frequent) as u64,
            );
        }
        obs.counter_fmt(
            format_args!("assoc.{algo}.passes"),
            self.passes.len() as u64,
        );
    }
}

impl fmt::Display for MiningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>12} {:>10} {:>12}",
            "pass", "candidates", "frequent", "time"
        )?;
        for p in &self.passes {
            writeln!(
                f,
                "{:>4} {:>12} {:>10} {:>10.2?}",
                p.pass, p.candidates, p.frequent, p.duration
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut s = MiningStats::default();
        s.push(1, 100, 40, Duration::from_millis(5));
        s.push(2, 780, 120, Duration::from_millis(12));
        assert_eq!(s.n_passes(), 2);
        assert_eq!(s.total_candidates(), 880);
        assert_eq!(s.total_frequent(), 160);
        assert_eq!(s.total_duration(), Duration::from_millis(17));
    }

    #[test]
    fn display_has_one_line_per_pass() {
        let mut s = MiningStats::default();
        s.push(1, 10, 5, Duration::ZERO);
        s.push(2, 8, 2, Duration::ZERO);
        assert_eq!(s.to_string().lines().count(), 3);
    }
}
