//! FP-Growth (Han, Pei & Yin, SIGMOD 2000): frequent-pattern mining
//! without candidate generation.
//!
//! Two database scans build a compact **FP-tree** — transactions
//! re-ordered by descending item frequency share prefixes, so the tree
//! is typically far smaller than the database — and mining proceeds by
//! recursively projecting **conditional pattern bases** (the prefix
//! paths above each suffix item) into conditional FP-trees. A tree that
//! degenerates to a single path short-circuits: every combination of
//! its nodes is frequent and is emitted directly.
//!
//! ## Governance
//!
//! FP-Growth has no per-pass candidate sets, so its truncation unit is
//! the **suffix group**: header items are processed from most to least
//! frequent, and all itemsets whose lowest-frequency member is item `r`
//! are emitted while processing `r`. On a guard trip the current group
//! is discarded wholesale, which keeps the result downward closed (every
//! subset of an emitted itemset lives in an earlier group, or in L1) and
//! an exactly-counted subset of the ungoverned run. The guard's work
//! unit stays "one itemset admitted to counting": `n_items` for the
//! frequency scan, then one unit per emitted itemset (a whole
//! `2^p - 1` batch is admitted up front when the single-path shortcut
//! fires).

use crate::apriori::POLL_STRIDE;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome, TruncationReason};
use dm_obs::HeapSize;
use dm_par::{par_chunks_map_reduce_governed, Chunking, Parallelism};
use std::collections::HashMap;
use std::time::Instant;

/// Single-path subset enumeration is used only for paths of at most this
/// many nodes (`2^16 - 1` emissions); longer paths fall back to the
/// recursive projection, which admits work itemset by itemset.
const SINGLE_PATH_MAX: usize = 16;

/// Sentinel for "no node" in header chains and parent links.
const NIL: u32 = u32::MAX;

/// One FP-tree node: an item (as a frequency rank), its path count, a
/// parent link for upward traversal, and the header-chain link tying
/// together all nodes of the same item.
#[derive(Debug, Clone, Copy)]
struct FpNode {
    rank: u32,
    count: usize,
    parent: u32,
    next: u32,
}

/// A compact FP-tree over frequency ranks `0..n_ranks` (rank 0 = most
/// frequent item). Node 0 is the root sentinel.
struct FpTree {
    nodes: Vec<FpNode>,
    /// Per rank: head of the chain of nodes carrying that rank.
    headers: Vec<u32>,
    /// Per rank: total support in this (possibly conditional) tree.
    rank_counts: Vec<usize>,
}

impl FpTree {
    fn new(n_ranks: usize) -> Self {
        FpTree {
            nodes: vec![FpNode {
                rank: NIL,
                count: 0,
                parent: NIL,
                next: NIL,
            }],
            headers: vec![NIL; n_ranks],
            rank_counts: vec![0; n_ranks],
        }
    }

    /// Inserts a rank-ascending path with the given count, sharing
    /// prefixes with existing paths. `children` is the build-time edge
    /// index `(parent node, rank) -> child node`, dropped after build.
    fn insert_path(
        &mut self,
        ranks: &[u32],
        count: usize,
        children: &mut HashMap<(u32, u32), u32>,
    ) {
        let mut at = 0u32;
        for &r in ranks {
            self.rank_counts[r as usize] += count;
            match children.get(&(at, r)) {
                Some(&child) => {
                    self.nodes[child as usize].count += count;
                    at = child;
                }
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(FpNode {
                        rank: r,
                        count,
                        parent: at,
                        next: self.headers[r as usize],
                    });
                    self.headers[r as usize] = idx;
                    children.insert((at, r), idx);
                    at = idx;
                }
            }
        }
    }

    /// Number of non-root nodes.
    fn n_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the tree is one downward path. Nodes are created in
    /// insertion order, so a tree is a single path iff every node's
    /// parent is its predecessor.
    fn is_single_path(&self) -> bool {
        self.nodes[1..]
            .iter()
            .enumerate()
            .all(|(i, n)| n.parent == i as u32)
    }
}

impl HeapSize for FpTree {
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FpNode>()
            + self.headers.capacity() * std::mem::size_of::<u32>()
            + self.rank_counts.capacity() * std::mem::size_of::<usize>()
    }
}

/// Instrumentation accumulated across the recursion, flushed to the
/// recorder once at the end of the run.
#[derive(Default)]
struct FpMetrics {
    tree_nodes: usize,
    cond_trees: usize,
    cond_nodes: usize,
    single_path_shortcuts: usize,
    /// Bytes of FP-trees currently alive (main + conditional stack).
    live_bytes: usize,
    /// High-water mark of `live_bytes`.
    peak_bytes: usize,
}

impl FpMetrics {
    fn alloc(&mut self, bytes: usize) {
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    fn free(&mut self, bytes: usize) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }
}

/// The FP-Growth miner. Produces [`FrequentItemsets`] bit-identical to
/// the Apriori family's (the equivalence tests enforce it) while
/// counting zero candidates.
#[derive(Debug, Clone)]
pub struct FpGrowth {
    min_support: MinSupport,
    parallelism: Parallelism,
}

impl FpGrowth {
    /// Creates an FP-Growth miner with the given threshold.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Sets how the initial frequency scan is spread across threads
    /// (shard counters merge by summation, so the result is identical
    /// for every setting; tree build and projection are sequential).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Scan 1: per-item support counts (dense, sharded like Apriori's
    /// first pass).
    fn item_counts(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Vec<usize>, TruncationReason> {
        let n_items = db.n_items() as usize;
        par_chunks_map_reduce_governed(
            self.parallelism,
            Chunking::PerThread,
            db.transactions(),
            guard,
            || vec![0usize; n_items],
            |shard| {
                let mut counts = vec![0usize; n_items];
                for (t, txn) in shard.iter().enumerate() {
                    if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break;
                    }
                    for &item in txn {
                        counts[item as usize] += 1;
                    }
                }
                counts
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
    }

    /// Scan 2: the FP-tree over frequency ranks. Polls the guard every
    /// [`POLL_STRIDE`] transactions; a trip voids the build.
    fn build_tree(
        db: &TransactionDb,
        item_of_rank: &[u32],
        rank_of_item: &[u32],
        guard: &Guard,
    ) -> Result<FpTree, TruncationReason> {
        let mut tree = FpTree::new(item_of_rank.len());
        let mut children: HashMap<(u32, u32), u32> = HashMap::new();
        let mut ranks: Vec<u32> = Vec::new();
        for (t, txn) in db.iter().enumerate() {
            if t.is_multiple_of(POLL_STRIDE) {
                guard.check()?;
            }
            ranks.clear();
            ranks.extend(
                txn.iter()
                    .map(|&item| rank_of_item[item as usize])
                    .filter(|&r| r != NIL),
            );
            ranks.sort_unstable();
            tree.insert_path(&ranks, 1, &mut children);
        }
        Ok(tree)
    }

    /// Projects the conditional FP-tree for suffix rank `r`: collects the
    /// prefix paths above every `r` node, prunes conditionally
    /// infrequent ranks, and rebuilds. Returns `None` when nothing in
    /// the base stays frequent.
    fn conditional_tree(
        tree: &FpTree,
        r: u32,
        min_count: usize,
        guard: &Guard,
        poll: &mut usize,
    ) -> Result<Option<FpTree>, TruncationReason> {
        // Pass A over the chain: conditional support of each prefix rank.
        let mut cond_counts = vec![0usize; r as usize];
        let mut node = tree.headers[r as usize];
        while node != NIL {
            *poll += 1;
            if poll.is_multiple_of(POLL_STRIDE) {
                guard.check()?;
            }
            let n = &tree.nodes[node as usize];
            let mut up = n.parent;
            while up != 0 {
                cond_counts[tree.nodes[up as usize].rank as usize] += n.count;
                up = tree.nodes[up as usize].parent;
            }
            node = n.next;
        }
        if !cond_counts.iter().any(|&c| c >= min_count) {
            return Ok(None);
        }
        // Pass B: rebuild with the surviving ranks.
        let mut cond = FpTree::new(r as usize);
        let mut children: HashMap<(u32, u32), u32> = HashMap::new();
        let mut path: Vec<u32> = Vec::new();
        let mut node = tree.headers[r as usize];
        while node != NIL {
            *poll += 1;
            if poll.is_multiple_of(POLL_STRIDE) {
                guard.check()?;
            }
            let n = &tree.nodes[node as usize];
            path.clear();
            let mut up = n.parent;
            while up != 0 {
                let rank = tree.nodes[up as usize].rank;
                if cond_counts[rank as usize] >= min_count {
                    path.push(rank);
                }
                up = tree.nodes[up as usize].parent;
            }
            path.reverse(); // upward walk yields descending ranks
            cond.insert_path(&path, n.count, &mut children);
            node = n.next;
        }
        Ok(Some(cond))
    }

    /// Emits every frequent itemset whose lowest-frequency member is
    /// `tree`'s suffix, recursing over conditional trees. `suffix` holds
    /// the item ids (not ranks) accumulated so far — always non-empty
    /// here, so every emission has length >= 2 once extended.
    #[allow(clippy::too_many_arguments)]
    fn mine_tree(
        tree: &FpTree,
        suffix: &mut Vec<u32>,
        item_of_rank: &[u32],
        min_count: usize,
        levels: &mut Vec<Vec<(Itemset, usize)>>,
        guard: &Guard,
        metrics: &mut FpMetrics,
        poll: &mut usize,
    ) -> Result<(), TruncationReason> {
        if tree.n_nodes() == 0 {
            return Ok(());
        }
        if tree.n_nodes() <= SINGLE_PATH_MAX && tree.is_single_path() {
            // Single-path shortcut: every combination of path nodes is
            // frequent with the deepest selected node's count.
            metrics.single_path_shortcuts += 1;
            let p = tree.n_nodes();
            guard.try_work((1u64 << p) - 1)?;
            for mask in 1u32..(1u32 << p) {
                let deepest = 31 - mask.leading_zeros(); // highest set bit
                let count = tree.nodes[1 + deepest as usize].count;
                let mut items: Itemset = suffix.clone();
                for bit in 0..p {
                    if mask & (1 << bit) != 0 {
                        items.push(item_of_rank[tree.nodes[1 + bit].rank as usize]);
                    }
                }
                items.sort_unstable();
                push_itemset(levels, items, count);
            }
            return Ok(());
        }
        // General case: one suffix extension per rank present in the tree.
        for r in 0..tree.headers.len() as u32 {
            if tree.headers[r as usize] == NIL || tree.rank_counts[r as usize] < min_count {
                continue;
            }
            guard.try_work(1)?;
            suffix.push(item_of_rank[r as usize]);
            let mut items: Itemset = suffix.clone();
            items.sort_unstable();
            push_itemset(levels, items, tree.rank_counts[r as usize]);
            let cond = Self::conditional_tree(tree, r, min_count, guard, poll)?;
            if let Some(cond) = cond {
                metrics.cond_trees += 1;
                metrics.cond_nodes += cond.n_nodes();
                let bytes = cond.heap_bytes();
                metrics.alloc(bytes);
                let res = Self::mine_tree(
                    &cond,
                    suffix,
                    item_of_rank,
                    min_count,
                    levels,
                    guard,
                    metrics,
                    poll,
                );
                metrics.free(bytes);
                res?;
            }
            suffix.pop();
        }
        Ok(())
    }
}

/// Appends `(items, count)` to its size level, growing the level list as
/// needed.
fn push_itemset(levels: &mut Vec<Vec<(Itemset, usize)>>, items: Itemset, count: usize) {
    let k = items.len();
    while levels.len() < k {
        levels.push(Vec::new());
    }
    levels[k - 1].push((items, count));
}

impl ItemsetMiner for FpGrowth {
    fn name(&self) -> &'static str {
        "fp-growth"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let mut stats = MiningStats::default();
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let mut metrics = FpMetrics::default();
        let obs = guard.obs();
        if obs.enabled() {
            obs.gauge_max("assoc.mem.db_bytes", db.transactions().heap_bytes() as f64);
        }
        let t0 = Instant::now();
        let mut scan_time = std::time::Duration::ZERO;

        'mine: {
            // Scan 1 admits one unit per item, like Apriori's pass 1.
            if guard.try_work(u64::from(db.n_items())).is_err() {
                break 'mine;
            }
            let counts = {
                let _scan = obs.span("assoc.fp.scan");
                Self::item_counts(self, db, guard)
            };
            let Ok(counts) = counts else {
                break 'mine;
            };
            scan_time = t0.elapsed();
            // Frequency ranks: descending count, item id breaking ties,
            // so the ordering (and the tree) is deterministic.
            let mut frequent: Vec<(u32, usize)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= min_count)
                .map(|(item, &c)| (item as u32, c))
                .collect();
            frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let item_of_rank: Vec<u32> = frequent.iter().map(|&(item, _)| item).collect();
            let mut rank_of_item = vec![NIL; db.n_items() as usize];
            for (rank, &(item, _)) in frequent.iter().enumerate() {
                rank_of_item[item as usize] = rank as u32;
            }
            levels.push(frequent.iter().map(|&(item, c)| (vec![item], c)).collect());

            let tree = {
                let _build = obs.span("assoc.fp.build");
                Self::build_tree(db, &item_of_rank, &rank_of_item, guard)
            };
            let Ok(tree) = tree else {
                break 'mine;
            };
            metrics.tree_nodes = tree.n_nodes();
            metrics.alloc(tree.heap_bytes());

            // Suffix groups from most to least frequent: on a trip the
            // current group is rolled back, leaving the completed groups
            // — a downward-closed subset (see module docs).
            let _mine = obs.span("assoc.fp.mine");
            let mut poll = 0usize;
            let mut suffix: Vec<u32> = Vec::with_capacity(8);
            for r in 0..item_of_rank.len() as u32 {
                let marks: Vec<usize> = levels.iter().map(Vec::len).collect();
                let group = (|| -> Result<(), TruncationReason> {
                    let cond = Self::conditional_tree(&tree, r, min_count, guard, &mut poll)?;
                    let Some(cond) = cond else {
                        return Ok(());
                    };
                    metrics.cond_trees += 1;
                    metrics.cond_nodes += cond.n_nodes();
                    let bytes = cond.heap_bytes();
                    metrics.alloc(bytes);
                    suffix.clear();
                    suffix.push(item_of_rank[r as usize]);
                    let res = Self::mine_tree(
                        &cond,
                        &mut suffix,
                        &item_of_rank,
                        min_count,
                        &mut levels,
                        guard,
                        &mut metrics,
                        &mut poll,
                    );
                    metrics.free(bytes);
                    res
                })();
                if group.is_err() {
                    for (level, mark) in levels.iter_mut().zip(marks) {
                        level.truncate(mark);
                    }
                    break 'mine;
                }
            }
        }

        // FP-Growth generates no candidates: the per-level stats carry
        // zero candidate counts (the shapes tests assert exactly this).
        // Level timings are not meaningful for a non-level-wise miner;
        // the scan duration lands on pass 1 and the live spans
        // (`assoc.fp.{scan,build,mine}`) carry the rest.
        for (k, level) in levels.iter().enumerate() {
            let d = if k == 0 {
                scan_time
            } else {
                std::time::Duration::ZERO
            };
            stats.push(k + 1, 0, level.len(), d);
        }
        stats.record_to(obs, "fp");
        if obs.enabled() {
            obs.counter("assoc.fp.tree_nodes", metrics.tree_nodes as u64);
            obs.counter("assoc.fp.cond_trees", metrics.cond_trees as u64);
            obs.counter("assoc.fp.cond_nodes", metrics.cond_nodes as u64);
            obs.counter(
                "assoc.fp.single_path_shortcuts",
                metrics.single_path_shortcuts as u64,
            );
            obs.gauge_max("assoc.fp.tree_mem_bytes", metrics.peak_bytes as f64);
            obs.gauge_max("assoc.mem.fptree_bytes", metrics.peak_bytes as f64);
        }
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(levels, db.len()),
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn mines_the_paper_example() {
        let result = FpGrowth::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap();
        let f = &result.itemsets;
        assert_eq!(f.level_len(1), 4);
        assert_eq!(f.level_len(2), 4);
        assert_eq!(f.level_len(3), 1);
        assert_eq!(f.support_count(&[2, 3, 5]), Some(2));
        assert_eq!(f.support_count(&[1, 3]), Some(2));
        assert_eq!(f.support_count(&[2, 5]), Some(3));
        assert_eq!(f.support_count(&[1, 2]), None);
        assert!(f.verify_downward_closure());
    }

    #[test]
    fn matches_apriori_on_the_paper_example() {
        let db = paper_db();
        for min in 1..=4usize {
            let fp = FpGrowth::new(MinSupport::Count(min)).mine(&db).unwrap();
            let ap = crate::Apriori::new(MinSupport::Count(min))
                .mine(&db)
                .unwrap();
            assert_eq!(fp.itemsets, ap.itemsets, "min_count {min}");
        }
    }

    #[test]
    fn stats_report_zero_candidates() {
        let result = FpGrowth::new(MinSupport::Count(2))
            .mine(&paper_db())
            .unwrap();
        assert!(result.stats.passes.iter().all(|p| p.candidates == 0));
        assert_eq!(result.stats.total_frequent(), result.itemsets.len());
    }

    #[test]
    fn single_path_database_uses_the_shortcut() {
        // Identical transactions: the tree is one path of 3 nodes.
        let db = TransactionDb::new(vec![vec![0, 1, 2]; 5]);
        let result = FpGrowth::new(MinSupport::Count(2)).mine(&db).unwrap();
        // 2^3 - 1 = 7 frequent itemsets, all with support 5.
        assert_eq!(result.itemsets.len(), 7);
        assert_eq!(result.itemsets.support_count(&[0, 1, 2]), Some(5));
        assert_eq!(result.itemsets.support_count(&[0, 2]), Some(5));
    }

    #[test]
    fn empty_and_degenerate_databases() {
        let empty = TransactionDb::new(vec![]);
        let result = FpGrowth::new(MinSupport::Count(1)).mine(&empty).unwrap();
        assert!(result.itemsets.is_empty());

        let singletons = TransactionDb::new(vec![vec![0], vec![0], vec![1]]);
        let result = FpGrowth::new(MinSupport::Count(2))
            .mine(&singletons)
            .unwrap();
        assert_eq!(result.itemsets.len(), 1);
        assert_eq!(result.itemsets.support_count(&[0]), Some(2));
    }

    #[test]
    fn high_threshold_yields_nothing() {
        let result = FpGrowth::new(MinSupport::Count(5))
            .mine(&paper_db())
            .unwrap();
        assert!(result.itemsets.is_empty());
    }
}
