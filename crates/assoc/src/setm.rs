//! SETM (Houtsma & Swami, ICDE 1995) — the set-oriented, SQL-style
//! miner used as the second baseline in the VLDB-'94 evaluation.
//!
//! SETM represents each pass relationally: `bar_k` is the multiset of
//! `(tid, k-itemset)` *occurrence* records. Pass `k` joins `bar_{k-1}`
//! with the transaction items (extending each occurrence by every larger
//! item of its transaction), aggregates occurrences by itemset to get
//! supports, and filters both the frequent set and the occurrence
//! relation. Because every occurrence is materialized — with no
//! `apriori-gen` pruning — SETM's intermediate relations dwarf the
//! database at low supports, which is exactly the failure mode the
//! paper's comparison (and experiment E1) exhibits.

use crate::apriori::POLL_STRIDE;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome};
use std::collections::HashMap;
use std::time::Instant;

/// Set-oriented miner over `(tid, itemset)` occurrence relations.
#[derive(Debug, Clone)]
pub struct Setm {
    min_support: MinSupport,
    max_len: Option<usize>,
}

impl Setm {
    /// Creates a SETM miner.
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            max_len: None,
        }
    }

    /// Stops after mining itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }
}

impl ItemsetMiner for Setm {
    fn name(&self) -> &'static str {
        "setm"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        let mut stats = MiningStats::default();
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();

        // SETM's occurrence relation is the workspace's worst blow-up
        // mode (no candidate pruning at all), so governance matters most
        // here: a trip inside a pass discards it, keeping only fully
        // aggregated passes.
        let obs = guard.obs();
        'mine: {
            // Pass 1: count items; bar_1 = frequent item occurrences.
            let pass1_span = obs.span("assoc.setm.pass1");
            let t0 = Instant::now();
            if guard.try_work(u64::from(db.n_items())).is_err() {
                break 'mine;
            }
            let mut counts = vec![0usize; db.n_items() as usize];
            for (t, txn) in db.iter().enumerate() {
                if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    break 'mine;
                }
                for &item in txn {
                    counts[item as usize] += 1;
                }
            }
            let l1: Vec<(Itemset, usize)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= min_count)
                .map(|(item, &c)| (vec![item as u32], c))
                .collect();
            let frequent_item = {
                let mut f = vec![false; db.n_items() as usize];
                for (items, _) in &l1 {
                    f[items[0] as usize] = true;
                }
                f
            };
            // Occurrence relation: (tid, itemset).
            let mut bar: Vec<(u32, Itemset)> = Vec::new();
            for (tid, txn) in db.iter().enumerate() {
                for &item in txn {
                    if frequent_item[item as usize] {
                        bar.push((tid as u32, vec![item]));
                    }
                }
            }
            drop(pass1_span);
            stats.push(1, db.n_items() as usize, l1.len(), t0.elapsed());
            levels.push(l1);

            let mut k = 1usize;
            while !levels[k - 1].is_empty() && self.max_len.is_none_or(|m| k < m) {
                let t0 = Instant::now();
                let pass_span = obs.span_fmt(format_args!("assoc.setm.pass{}", k + 1));
                // Join + aggregate fused: extend each occurrence with
                // every larger item of its transaction (relational
                // semantics — no candidate pruning) while counting
                // supports, so each *distinct* candidate is admitted
                // against the budget the moment it first appears — before
                // the occurrence relation can run away.
                let mut extended: Vec<(u32, Itemset)> = Vec::new();
                let mut support: HashMap<Itemset, usize> = HashMap::new();
                for (r, (tid, itemset)) in bar.iter().enumerate() {
                    if r.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break 'mine;
                    }
                    let txn = db.transaction(*tid as usize);
                    let Some(&max_item) = itemset.last() else {
                        continue;
                    };
                    let from = txn.partition_point(|&i| i <= max_item);
                    for &item in &txn[from..] {
                        let mut cand = itemset.clone();
                        cand.push(item);
                        match support.entry(cand.clone()) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                if guard.try_work(1).is_err() {
                                    break 'mine;
                                }
                                e.insert(1);
                            }
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                *e.get_mut() += 1;
                            }
                        }
                        extended.push((*tid, cand));
                    }
                }
                if extended.is_empty() {
                    break;
                }
                let n_candidates = support.len();
                let mut lk: Vec<(Itemset, usize)> = support
                    .iter()
                    .filter(|&(_, &c)| c >= min_count)
                    .map(|(items, &c)| (items.clone(), c))
                    .collect();
                lk.sort();
                // Filter the occurrence relation down to frequent itemsets.
                let keep: std::collections::HashSet<&[u32]> =
                    lk.iter().map(|(i, _)| i.as_slice()).collect();
                let bar_next: Vec<(u32, Itemset)> = extended
                    .iter()
                    .filter(|(_, itemset)| keep.contains(itemset.as_slice()))
                    .cloned()
                    .collect();
                drop(extended);
                bar = bar_next;
                drop(pass_span);
                stats.push(k + 1, n_candidates, lk.len(), t0.elapsed());
                let done = lk.is_empty();
                levels.push(lk);
                k += 1;
                if done {
                    break;
                }
            }
        }

        stats.record_to(guard.obs(), "setm");
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(levels, db.len()),
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apriori;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_apriori_on_paper_db() {
        let db = paper_db();
        for min in 1..=4 {
            let a = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
            let s = Setm::new(MinSupport::Count(min)).mine(&db).unwrap();
            assert_eq!(a.itemsets, s.itemsets, "min {min}");
        }
    }

    #[test]
    fn occurrence_relation_counts_match_reference() {
        let db = paper_db();
        let r = Setm::new(MinSupport::Count(2)).mine(&db).unwrap();
        for (itemset, count) in r.itemsets.iter() {
            assert_eq!(count, db.support_count(itemset));
        }
    }

    #[test]
    fn max_len_and_degenerate_inputs() {
        let db = paper_db();
        let r = Setm::new(MinSupport::Count(2))
            .with_max_len(1)
            .mine(&db)
            .unwrap();
        assert_eq!(r.itemsets.max_len(), 1);
        let empty = TransactionDb::new(vec![]);
        assert!(Setm::new(MinSupport::Count(1))
            .mine(&empty)
            .unwrap()
            .itemsets
            .is_empty());
    }

    #[test]
    fn agrees_on_synthetic_workload() {
        use dm_synth::{QuestConfig, QuestGenerator};
        let db = QuestGenerator::new(QuestConfig::standard(6.0, 2.0, 600), 9)
            .unwrap()
            .generate(10);
        let a = Apriori::new(MinSupport::Fraction(0.02)).mine(&db).unwrap();
        let s = Setm::new(MinSupport::Fraction(0.02)).mine(&db).unwrap();
        assert_eq!(a.itemsets, s.itemsets);
    }
}
