//! The hash tree used by Apriori to count candidate support in time
//! sublinear in the number of candidates per transaction.
//!
//! Interior nodes hash one item to a fixed fanout of children; leaves
//! hold candidate itemsets with their counts. A leaf that outgrows
//! `leaf_capacity` at depth `< k` splits into an interior node. During
//! counting, a transaction walks every hash path its items induce and
//! performs subset checks only at the (few) leaves it reaches; a
//! generation stamp prevents counting a leaf twice for one transaction.

use crate::itemsets::Itemset;
use dm_dataset::transactions::is_subset_sorted;
use dm_obs::HeapSize;

#[derive(Debug, Clone)]
enum Node {
    /// Child node ids, one per hash bucket.
    Interior(Vec<usize>),
    /// Candidates, each carrying its dense candidate id (the index of
    /// its slot in a [`CountState`]).
    Leaf { candidates: Vec<(Itemset, u32)> },
}

/// Per-scan counting state, separate from the tree structure so several
/// shards can count over one shared tree concurrently (the Count
/// Distribution scheme): each shard owns a `CountState`, and shard
/// counts merge by summation with [`CountState::absorb`].
#[derive(Debug, Clone)]
pub struct CountState {
    /// Support count per candidate id.
    counts: Vec<usize>,
    /// Generation stamp of the last transaction that visited each leaf
    /// (prevents double counting when hash paths collide).
    visited: Vec<u64>,
    generation: u64,
    /// Tree nodes touched while counting (interior hops + leaf checks),
    /// the `assoc.apriori.pass<k>.hashtree_visits` metric. Pure telemetry:
    /// never read back by the algorithm.
    node_visits: u64,
}

impl CountState {
    /// Adds another shard's counts into this one.
    pub fn absorb(&mut self, other: &CountState) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.node_visits += other.node_visits;
    }

    /// The accumulated per-candidate counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Tree nodes touched while counting (see the field docs).
    pub fn node_visits(&self) -> u64 {
        self.node_visits
    }
}

/// A hash tree over size-`k` candidate itemsets.
///
/// The structure is immutable once built; all counting goes through an
/// external [`CountState`] so shards can scan disjoint database
/// partitions in parallel against the same tree.
#[derive(Debug, Clone)]
pub struct HashTree {
    nodes: Vec<Node>,
    k: usize,
    fanout: usize,
    leaf_capacity: usize,
    n_candidates: usize,
    /// The built-in state used by the single-threaded convenience API
    /// ([`HashTree::count_transaction`] / [`HashTree::into_frequent`]).
    state: CountState,
}

impl HashTree {
    /// Creates an empty tree for size-`k` candidates.
    ///
    /// # Panics
    /// Panics if `k == 0`, `fanout < 2` or `leaf_capacity == 0`.
    pub fn new(k: usize, fanout: usize, leaf_capacity: usize) -> Self {
        assert!(k >= 1, "candidate size must be >= 1");
        assert!(fanout >= 2, "fanout must be >= 2");
        assert!(leaf_capacity >= 1, "leaf capacity must be >= 1");
        Self {
            nodes: vec![Node::Leaf {
                candidates: Vec::new(),
            }],
            k,
            fanout,
            leaf_capacity,
            n_candidates: 0,
            state: CountState {
                counts: Vec::new(),
                visited: Vec::new(),
                generation: 0,
                node_visits: 0,
            },
        }
    }

    /// Builds a tree holding all of `candidates` (each sorted, length `k`).
    pub fn build(candidates: Vec<Itemset>, k: usize, fanout: usize, leaf_capacity: usize) -> Self {
        let mut tree = Self::new(k, fanout, leaf_capacity);
        for c in candidates {
            tree.insert(c);
        }
        tree
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// Whether the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Inserts a sorted size-`k` candidate, assigning it the next dense
    /// candidate id.
    pub fn insert(&mut self, candidate: Itemset) {
        debug_assert_eq!(candidate.len(), self.k);
        debug_assert!(candidate.windows(2).all(|w| w[0] < w[1]));
        let mut node = 0usize;
        let mut depth = 0usize;
        loop {
            match &mut self.nodes[node] {
                Node::Interior(children) => {
                    node = children[candidate[depth] as usize % self.fanout];
                    depth += 1;
                }
                Node::Leaf { candidates } => {
                    candidates.push((candidate, self.n_candidates as u32));
                    self.n_candidates += 1;
                    if candidates.len() > self.leaf_capacity && depth < self.k {
                        self.split_leaf(node, depth);
                    }
                    return;
                }
            }
        }
    }

    /// A fresh, zeroed counting state sized for this tree. One per
    /// shard when counting in parallel.
    pub fn new_count_state(&self) -> CountState {
        CountState {
            counts: vec![0; self.n_candidates],
            visited: vec![0; self.nodes.len()],
            generation: 0,
            node_visits: 0,
        }
    }

    /// Splits the leaf at `node` (which sits at `depth`) into an interior
    /// node, redistributing its candidates by the hash of their item at
    /// `depth`.
    fn split_leaf(&mut self, node: usize, depth: usize) {
        let candidates = match std::mem::replace(&mut self.nodes[node], Node::Interior(Vec::new()))
        {
            Node::Leaf { candidates } => candidates,
            Node::Interior(_) => unreachable!("split target is a leaf"),
        };
        let mut children = Vec::with_capacity(self.fanout);
        for _ in 0..self.fanout {
            children.push(self.nodes.len());
            self.nodes.push(Node::Leaf {
                candidates: Vec::new(),
            });
        }
        for (cand, id) in candidates {
            let child = children[cand[depth] as usize % self.fanout];
            match &mut self.nodes[child] {
                Node::Leaf { candidates } => candidates.push((cand, id)),
                Node::Interior(_) => unreachable!("fresh children are leaves"),
            }
        }
        self.nodes[node] = Node::Interior(children);
        // Note: a child may itself exceed capacity when many candidates
        // share a hash path. It will split lazily on the next insert that
        // lands in it; at depth == k it is allowed to overflow.
    }

    /// Counts this tree's candidates contained in `txn` (sorted item
    /// ids) into `state`. The tree itself is read-only, so disjoint
    /// database shards can count concurrently, each into its own state.
    pub fn count_transaction_into(&self, txn: &[u32], state: &mut CountState) {
        if txn.len() < self.k || self.is_empty() {
            return;
        }
        debug_assert_eq!(state.visited.len(), self.nodes.len());
        state.generation += 1;
        let generation = state.generation;
        let fanout = self.fanout;
        let k = self.k;
        // Explicit DFS stack of (node id, next transaction position,
        // depth of the node).
        let mut stack: Vec<(usize, usize, usize)> = Vec::with_capacity(txn.len() + 4);
        stack.push((0, 0, 0));
        while let Some((node, start, depth)) = stack.pop() {
            state.node_visits += 1;
            match &self.nodes[node] {
                Node::Leaf { candidates } => {
                    if state.visited[node] == generation {
                        continue; // already counted for this transaction
                    }
                    state.visited[node] = generation;
                    for (cand, id) in candidates {
                        if is_subset_sorted(cand, txn) {
                            state.counts[*id as usize] += 1;
                        }
                    }
                }
                Node::Interior(children) => {
                    // Choosing the (depth+1)-th item at position i must
                    // leave k - depth - 1 further items after it.
                    let last = txn.len() - (k - depth);
                    for (i, &item) in txn.iter().enumerate().take(last + 1).skip(start) {
                        stack.push((children[item as usize % fanout], i + 1, depth + 1));
                    }
                }
            }
        }
    }

    /// Single-threaded convenience: counts `txn` into the tree's own
    /// built-in state.
    pub fn count_transaction(&mut self, txn: &[u32]) {
        if self.state.counts.len() != self.n_candidates {
            self.state = self.new_count_state();
        }
        let mut state = std::mem::replace(
            &mut self.state,
            CountState {
                counts: Vec::new(),
                visited: Vec::new(),
                generation: 0,
                node_visits: 0,
            },
        );
        self.count_transaction_into(txn, &mut state);
        self.state = state;
    }

    /// Drains the tree against an explicit (e.g. shard-merged) count
    /// vector, returning every `(candidate, count)` pair with
    /// `count >= min_count`, lexicographically sorted.
    pub fn into_frequent_with(self, counts: &[usize], min_count: usize) -> Vec<(Itemset, usize)> {
        debug_assert_eq!(counts.len(), self.n_candidates);
        let mut out = Vec::new();
        for node in self.nodes {
            if let Node::Leaf { candidates } = node {
                out.extend(candidates.into_iter().filter_map(|(cand, id)| {
                    let count = counts[id as usize];
                    (count >= min_count).then_some((cand, count))
                }));
            }
        }
        out.sort();
        out
    }

    /// Drains the tree against its built-in counting state (the
    /// single-threaded convenience path).
    pub fn into_frequent(self, min_count: usize) -> Vec<(Itemset, usize)> {
        let counts = if self.state.counts.len() == self.n_candidates {
            self.state.counts.clone()
        } else {
            vec![0; self.n_candidates]
        };
        self.into_frequent_with(&counts, min_count)
    }

    /// All `(candidate, count)` pairs regardless of count, sorted.
    pub fn into_counts(self) -> Vec<(Itemset, usize)> {
        self.into_frequent(0)
    }
}

impl HeapSize for Node {
    fn heap_bytes(&self) -> usize {
        match self {
            Node::Interior(children) => children.heap_bytes(),
            Node::Leaf { candidates } => candidates.heap_bytes(),
        }
    }
}

impl HeapSize for CountState {
    fn heap_bytes(&self) -> usize {
        self.counts.heap_bytes() + self.visited.heap_bytes()
    }
}

impl HeapSize for HashTree {
    fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes() + self.state.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::TransactionDb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_match_reference_on_small_db() {
        let db = TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ]);
        let candidates = vec![
            vec![1, 3],
            vec![2, 3],
            vec![2, 5],
            vec![3, 5],
            vec![1, 5],
            vec![4, 5],
        ];
        let mut tree = HashTree::build(candidates.clone(), 2, 3, 2);
        for t in db.iter() {
            tree.count_transaction(t);
        }
        let counts = tree.into_counts();
        for (cand, count) in counts {
            assert_eq!(count, db.support_count(&cand), "candidate {cand:?}");
        }
    }

    #[test]
    fn splitting_preserves_counts_randomized() {
        // Random DB + random candidates; tiny leaf capacity forces deep
        // splits. Counts must equal the brute-force reference.
        let mut rng = StdRng::seed_from_u64(99);
        let txns: Vec<Vec<u32>> = (0..200)
            .map(|_| {
                let len = rng.gen_range(1..=12);
                (0..len).map(|_| rng.gen_range(0..30u32)).collect()
            })
            .collect();
        let db = TransactionDb::new(txns);
        // Candidates: random sorted triples.
        let mut candidates: Vec<Itemset> = Vec::new();
        while candidates.len() < 80 {
            let mut c: Vec<u32> = (0..3).map(|_| rng.gen_range(0..30u32)).collect();
            c.sort_unstable();
            c.dedup();
            if c.len() == 3 && !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        let mut tree = HashTree::build(candidates, 3, 4, 1);
        for t in db.iter() {
            tree.count_transaction(t);
        }
        for (cand, count) in tree.into_counts() {
            assert_eq!(count, db.support_count(&cand), "candidate {cand:?}");
        }
    }

    #[test]
    fn into_frequent_filters_by_count() {
        let mut tree = HashTree::new(1, 2, 4);
        tree.insert(vec![0]);
        tree.insert(vec![1]);
        tree.count_transaction(&[0]);
        tree.count_transaction(&[0, 1]);
        let frequent = tree.into_frequent(2);
        assert_eq!(frequent, vec![(vec![0], 2)]);
    }

    #[test]
    fn short_transactions_skipped() {
        let mut tree = HashTree::new(3, 2, 2);
        tree.insert(vec![1, 2, 3]);
        tree.count_transaction(&[1, 2]); // too short to contain a 3-set
        assert_eq!(tree.into_counts(), vec![(vec![1, 2, 3], 0)]);
    }

    #[test]
    fn empty_tree_is_safe() {
        let mut tree = HashTree::new(2, 4, 4);
        assert!(tree.is_empty());
        tree.count_transaction(&[1, 2, 3]);
        assert!(tree.into_counts().is_empty());
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn rejects_tiny_fanout() {
        HashTree::new(2, 1, 4);
    }

    #[test]
    fn node_visits_accumulate_and_absorb() {
        let tree = HashTree::build(vec![vec![1, 2], vec![2, 3]], 2, 2, 1);
        let mut a = tree.new_count_state();
        let mut b = tree.new_count_state();
        tree.count_transaction_into(&[1, 2, 3], &mut a);
        tree.count_transaction_into(&[2, 3], &mut b);
        assert!(a.node_visits() > 0);
        assert!(b.node_visits() > 0);
        let before = a.node_visits();
        a.absorb(&b);
        assert_eq!(a.node_visits(), before + b.node_visits());
    }

    #[test]
    fn heap_size_counts_nodes_and_candidates() {
        let small = HashTree::build(vec![vec![1, 2]], 2, 4, 4);
        let big = HashTree::build((0..64u32).map(|i| vec![i, i + 64]).collect(), 2, 4, 4);
        assert!(small.heap_bytes() > 0);
        assert!(
            big.heap_bytes() > small.heap_bytes() + 64 * 2 * 4,
            "64 two-item candidates dominate: {} vs {}",
            big.heap_bytes(),
            small.heap_bytes()
        );
    }

    #[test]
    fn no_double_count_via_multiple_paths() {
        // Items 0 and 4 share bucket (fanout 4 ⇒ 0 % 4 == 4 % 4), so the
        // transaction reaches the same leaf along two paths; the
        // generation stamp must prevent double counting.
        let mut tree = HashTree::new(2, 4, 1);
        tree.insert(vec![0, 4]);
        tree.insert(vec![0, 8]);
        tree.insert(vec![4, 8]); // force splits among colliding items
        tree.count_transaction(&[0, 4, 8]);
        for (cand, count) in tree.into_counts() {
            assert_eq!(count, 1, "candidate {cand:?}");
        }
    }
}
