//! AprioriHybrid: the headline algorithm of Agrawal & Srikant (VLDB
//! 1994).
//!
//! Apriori wins early passes (counting against the raw database is cheap
//! while `C̄_k` would be huge); AprioriTid wins late passes (the `C̄`
//! representation shrinks below the database size). AprioriHybrid runs
//! Apriori and switches to the TID representation at the end of the
//! first pass where the estimated size of `C̄_{k+1}` — the sum of the
//! supports of the frequent `k`-itemsets plus one entry per surviving
//! transaction — drops below a memory budget. The switch itself costs
//! one extra pass-shaped scan to materialize `C̄`, which is why it only
//! pays off when at least one more pass follows (the caveat the paper
//! itself notes).

use crate::apriori::POLL_STRIDE;
use crate::candidate::apriori_gen;
use crate::itemsets::{FrequentItemsets, Itemset};
use crate::stats::MiningStats;
use crate::{Apriori, ItemsetMiner, MinSupport, MiningResult};
use dm_dataset::transactions::is_subset_sorted;
use dm_dataset::{DataError, TransactionDb};
use dm_guard::{Guard, Outcome, TruncationReason};
use dm_obs::HeapSize;
use dm_par::{par_chunks_map_reduce_governed, Chunking, Parallelism};
use std::collections::HashMap;
use std::time::Instant;

/// Hybrid Apriori/AprioriTid miner with a support-mass switch heuristic.
#[derive(Debug, Clone)]
pub struct AprioriHybrid {
    min_support: MinSupport,
    max_len: Option<usize>,
    /// Switch to the TID representation once the estimated number of
    /// `(transaction, candidate)` entries falls below this budget.
    tid_budget: usize,
    parallelism: Parallelism,
}

impl AprioriHybrid {
    /// Creates a hybrid miner with a 1M-entry `C̄` budget (comfortably
    /// in-memory; entries are `u32`s).
    pub fn new(min_support: MinSupport) -> Self {
        Self {
            min_support,
            max_len: None,
            tid_budget: 1_000_000,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Overrides the `C̄` entry budget that triggers the switch.
    pub fn with_tid_budget(mut self, tid_budget: usize) -> Self {
        self.tid_budget = tid_budget;
        self
    }

    /// Sets how the Apriori-phase support counting is spread across
    /// threads (Count Distribution over database shards; the TID-join
    /// phase is inherently sequential and unaffected). Results are
    /// identical for every [`Parallelism`] setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Stops after mining itemsets of this size.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }
}

impl ItemsetMiner for AprioriHybrid {
    fn name(&self) -> &'static str {
        "apriori-hybrid"
    }

    fn mine_governed(
        &self,
        db: &TransactionDb,
        guard: &Guard,
    ) -> Result<Outcome<MiningResult>, DataError> {
        let min_count = self.min_support.resolve(db)?;
        // Phase 1: plain Apriori, pass by pass, watching the estimate.
        let apriori = Apriori::new(MinSupport::Count(min_count)).with_parallelism(self.parallelism);
        let mut stats = MiningStats::default();
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();

        let mut switched_at: Option<usize> = None;

        let obs = guard.obs();
        'mine: {
            // Passes 1 and 2 always run under Apriori's dense counters (a
            // C̄ over pairs would dwarf the database), delegated to the
            // public miner — under the *same* guard, so its budget and
            // cancellation flow through.
            let full = apriori.clone().with_max_len(2).mine_governed(db, guard)?;
            for p in &full.result.stats.passes {
                // The delegated passes ran under `assoc.apriori.pass<k>`
                // live spans; mirror their durations into this miner's
                // own histogram names (no tree node — the tree already
                // shows them as apriori spans).
                obs.span_ns_fmt(
                    format_args!("assoc.apriori_hybrid.pass{}", p.pass),
                    p.duration.as_nanos().min(u64::MAX as u128) as u64,
                );
                stats.passes.push(p.clone());
            }
            for k in 1..=full.result.itemsets.max_len() {
                levels.push(full.result.itemsets.level(k).to_vec());
            }
            if !full.is_complete() {
                break 'mine;
            }

            let mut k = levels.len();
            // TID-phase state (populated at the switch).
            let mut tidlists: Option<Vec<Vec<u32>>> = None;

            while k >= 2 && !levels[k - 1].is_empty() && self.max_len.is_none_or(|m| k < m) {
                let prev: Vec<Itemset> = levels[k - 1].iter().map(|(i, _)| i.clone()).collect();
                if prev.len() < 2 {
                    break;
                }
                let t0 = Instant::now();
                let pass_span = obs.span_fmt(format_args!("assoc.apriori_hybrid.pass{}", k + 1));
                let candidates = apriori_gen(&prev);
                if candidates.is_empty() {
                    break;
                }
                let n_candidates = candidates.len();
                if guard.try_work(n_candidates as u64).is_err() {
                    break 'mine;
                }

                // Estimate C̄_{k+1} volume: support mass of L_k. Recorded
                // verbatim — the gauge holds the exact number the switch
                // heuristic compares against `tid_budget`.
                let support_mass: usize =
                    levels[k - 1].iter().map(|(_, c)| c).sum::<usize>() + db.len();
                obs.gauge_max_fmt(
                    format_args!("assoc.apriori_hybrid.pass{}.ck_est_entries", k + 1),
                    support_mass as f64,
                );
                if tidlists.is_none() && support_mass <= self.tid_budget {
                    // Switch: materialize C̄_k (ids into L_k) with one scan.
                    switched_at = Some(k);
                    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(db.len());
                    for (t, txn) in db.iter().enumerate() {
                        if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                            break 'mine;
                        }
                        let ids: Vec<u32> = prev
                            .iter()
                            .enumerate()
                            .filter(|(_, items)| is_subset_sorted(items, txn))
                            .map(|(id, _)| id as u32)
                            .collect();
                        if !ids.is_empty() {
                            lists.push(ids);
                        }
                    }
                    tidlists = Some(lists);
                }

                let counted: Result<Vec<(Itemset, usize)>, TruncationReason> = match &mut tidlists {
                    // Apriori-style counting against the raw database.
                    None => {
                        apriori_count(self.parallelism, db, &candidates, k + 1, min_count, guard)
                    }
                    Some(lists) => {
                        // AprioriTid-style join over C̄_k.
                        tid_pass(&prev, &candidates, lists, min_count, guard).map(
                            |(lk, next_lists)| {
                                *lists = next_lists;
                                lk
                            },
                        )
                    }
                };
                let Ok(frequent) = counted else {
                    break 'mine;
                };
                if obs.enabled() {
                    if let Some(lists) = &tidlists {
                        let ck = lists.heap_bytes() as f64;
                        obs.gauge_max_fmt(
                            format_args!("assoc.apriori_hybrid.pass{}.ck_mem_bytes", k + 1),
                            ck,
                        );
                        obs.gauge_max("assoc.mem.ck_bytes", ck);
                    }
                }
                drop(pass_span);
                stats.push(k + 1, n_candidates, frequent.len(), t0.elapsed());
                let done = frequent.is_empty();
                levels.push(frequent);
                k += 1;
                if done {
                    break;
                }
            }
        }

        stats.record_to(guard.obs(), "apriori_hybrid");
        if let Some(pass) = switched_at {
            guard
                .obs()
                .gauge("assoc.apriori_hybrid.switched_at_pass", pass as f64);
        }
        Ok(guard.outcome(MiningResult {
            itemsets: FrequentItemsets::from_levels(levels, db.len()),
            stats,
        }))
    }
}

/// Hash-tree counting of `candidates` (size `k`) against the database,
/// sharded Count Distribution-style when `par` allows. The guard is
/// polled inside each shard (bounded cancellation latency) and checked
/// once more after the merge.
fn apriori_count(
    par: Parallelism,
    db: &TransactionDb,
    candidates: &[Itemset],
    k: usize,
    min_count: usize,
    guard: &Guard,
) -> Result<Vec<(Itemset, usize)>, TruncationReason> {
    let tree = crate::hash_tree::HashTree::build(candidates.to_vec(), k, 8, 16);
    let obs = guard.obs();
    if obs.enabled() {
        let bytes = tree.heap_bytes() as f64;
        obs.gauge_max_fmt(
            format_args!("assoc.apriori_hybrid.pass{k}.hashtree_mem_bytes"),
            bytes,
        );
        obs.gauge_max("assoc.mem.hashtree_bytes", bytes);
    }
    let state = par_chunks_map_reduce_governed(
        par,
        Chunking::PerThread,
        db.transactions(),
        guard,
        || tree.new_count_state(),
        |shard| {
            let mut state = tree.new_count_state();
            for (t, txn) in shard.iter().enumerate() {
                if t.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    break;
                }
                tree.count_transaction_into(txn, &mut state);
            }
            state
        },
        |mut a, b| {
            a.absorb(&b);
            a
        },
    )?;
    guard.obs().counter_fmt(
        format_args!("assoc.apriori_hybrid.pass{k}.hashtree_visits"),
        state.node_visits(),
    );
    Ok(tree.into_frequent_with(state.counts(), min_count))
}

/// Frequent `(itemset, count)` pairs plus the next pass's `C̄` tid-lists.
type TidPassOutput = (Vec<(Itemset, usize)>, Vec<Vec<u32>>);

/// One AprioriTid join pass: counts `candidates` (generated from `prev`)
/// via the candidate-id lists, returning the frequent sets and the next
/// `C̄` (remapped to dense ids over the frequent candidates).
fn tid_pass(
    prev: &[Itemset],
    candidates: &[Itemset],
    tidlists: &[Vec<u32>],
    min_count: usize,
    guard: &Guard,
) -> Result<TidPassOutput, TruncationReason> {
    let prev_id: HashMap<&[u32], u32> = prev
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_slice(), i as u32))
        .collect();
    let mut generators: Vec<(u32, u32)> = Vec::with_capacity(candidates.len());
    let mut by_g1: Vec<Vec<u32>> = vec![Vec::new(); prev.len()];
    for (cid, cand) in candidates.iter().enumerate() {
        let n = cand.len();
        let mut g1 = cand.clone();
        g1.remove(n - 1);
        let mut g2 = cand.clone();
        g2.remove(n - 2);
        let id1 = prev_id[g1.as_slice()];
        let id2 = prev_id[g2.as_slice()];
        generators.push((id1, id2));
        by_g1[id1 as usize].push(cid as u32);
    }
    let mut stamp = vec![u32::MAX; prev.len()];
    let mut counts = vec![0usize; candidates.len()];
    let mut next: Vec<Vec<u32>> = Vec::with_capacity(tidlists.len());
    for (gen, ids) in tidlists.iter().enumerate() {
        if gen.is_multiple_of(POLL_STRIDE) {
            guard.check()?;
        }
        let gen = gen as u32;
        for &id in ids {
            stamp[id as usize] = gen;
        }
        let mut present = Vec::new();
        for &id in ids {
            for &cid in &by_g1[id as usize] {
                let (_, g2) = generators[cid as usize];
                if stamp[g2 as usize] == gen {
                    counts[cid as usize] += 1;
                    present.push(cid);
                }
            }
        }
        if !present.is_empty() {
            present.sort_unstable();
            next.push(present);
        }
    }
    let mut new_id = vec![u32::MAX; candidates.len()];
    let mut lk = Vec::new();
    for (cid, cand) in candidates.iter().enumerate() {
        if counts[cid] >= min_count {
            new_id[cid] = lk.len() as u32;
            lk.push((cand.clone(), counts[cid]));
        }
    }
    for ids in &mut next {
        ids.retain_mut(|cid| {
            let mapped = new_id[*cid as usize];
            if mapped == u32::MAX {
                false
            } else {
                *cid = mapped;
                true
            }
        });
    }
    next.retain(|ids| !ids.is_empty());
    Ok((lk, next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AprioriTid;

    fn paper_db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn matches_other_miners_whatever_the_budget() {
        let db = paper_db();
        for budget in [0usize, 3, 10, 1_000_000] {
            for min in 1..=3 {
                let hybrid = AprioriHybrid::new(MinSupport::Count(min))
                    .with_tid_budget(budget)
                    .mine(&db)
                    .unwrap();
                let reference = AprioriTid::new(MinSupport::Count(min)).mine(&db).unwrap();
                assert_eq!(
                    hybrid.itemsets, reference.itemsets,
                    "budget {budget} min {min}"
                );
            }
        }
    }

    #[test]
    fn zero_budget_never_switches_and_still_agrees() {
        let db = paper_db();
        let hybrid = AprioriHybrid::new(MinSupport::Count(2))
            .with_tid_budget(0)
            .mine(&db)
            .unwrap();
        assert_eq!(hybrid.itemsets.support_count(&[2, 3, 5]), Some(2));
        assert!(hybrid.itemsets.verify_downward_closure());
    }

    #[test]
    fn max_len_respected() {
        let db = paper_db();
        let r = AprioriHybrid::new(MinSupport::Count(2))
            .with_max_len(2)
            .mine(&db)
            .unwrap();
        assert_eq!(r.itemsets.max_len(), 2);
    }

    #[test]
    fn agrees_on_synthetic_workload() {
        use dm_synth::{QuestConfig, QuestGenerator};
        let db = QuestGenerator::new(QuestConfig::standard(8.0, 3.0, 800), 5)
            .unwrap()
            .generate(6);
        let hybrid = AprioriHybrid::new(MinSupport::Fraction(0.01))
            .mine(&db)
            .unwrap();
        let reference = AprioriTid::new(MinSupport::Fraction(0.01))
            .mine(&db)
            .unwrap();
        assert_eq!(hybrid.itemsets, reference.itemsets);
    }
}
