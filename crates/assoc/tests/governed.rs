//! Governance invariants for every itemset miner: truncated results are
//! valid subsets of the ungoverned run, caps are never exceeded,
//! cross-thread cancellation stops the mine, and an unlimited guard is
//! indistinguishable from no guard at all.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_assoc::{
    Ais, Apriori, AprioriHybrid, AprioriTid, BruteForce, Eclat, FpGrowth, FrequentItemsets,
    ItemsetMiner, MinSupport, Setm,
};
use dm_dataset::TransactionDb;
use dm_guard::{Budget, CancelToken, Guard, RunStatus, TruncationReason};
use dm_synth::{QuestConfig, QuestGenerator};

/// Synthetic workload big enough that low supports generate thousands of
/// candidates, yet small enough for the slow baselines (AIS, SETM) to
/// run ungoverned repeatedly in debug builds.
fn synthetic_db() -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(6.0, 3.0, 120), 42)
        .unwrap()
        .generate(3)
}

/// Small universe for the brute-force oracle.
fn small_db() -> TransactionDb {
    TransactionDb::new(vec![
        vec![1, 3, 4],
        vec![2, 3, 5],
        vec![1, 2, 3, 5],
        vec![2, 5],
        vec![0, 1, 2, 3, 4, 5],
        vec![0, 2, 4],
    ])
}

fn all_miners(min: MinSupport) -> Vec<Box<dyn ItemsetMiner>> {
    vec![
        Box::new(Apriori::new(min)),
        Box::new(AprioriTid::new(min)),
        Box::new(AprioriHybrid::new(min)),
        Box::new(AprioriHybrid::new(min).with_tid_budget(0)),
        Box::new(Ais::new(min)),
        Box::new(Setm::new(min)),
        Box::new(FpGrowth::new(min)),
        Box::new(Eclat::new(min)),
        Box::new(Apriori::new(min).with_vertical_pass2(true)),
    ]
}

/// Every governed itemset must appear in the ungoverned run with the
/// exact same support count.
fn assert_subset(governed: &FrequentItemsets, full: &FrequentItemsets, ctx: &str) {
    for (itemset, count) in governed.iter() {
        assert_eq!(
            full.support_count(itemset),
            Some(count),
            "{ctx}: governed itemset {itemset:?} missing or miscounted in full run"
        );
    }
}

#[test]
fn work_budget_truncates_without_exceeding_cap() {
    let db = synthetic_db();
    let min = MinSupport::Count(2);
    for miner in all_miners(min) {
        let full = miner.mine(&db).unwrap();
        for max_work in [0u64, 1, 64, 512, 4096, 10_000] {
            let guard = Guard::new(Budget::unlimited().with_max_work(max_work));
            let out = miner.mine_governed(&db, &guard).unwrap();
            let ctx = format!("{} max_work={max_work}", miner.name());
            assert!(
                guard.work_done() <= max_work,
                "{ctx}: admitted {} work units past the cap",
                guard.work_done()
            );
            assert!(out.result.itemsets.verify_downward_closure(), "{ctx}");
            assert_subset(&out.result.itemsets, &full.itemsets, &ctx);
            match out.status {
                RunStatus::Complete => {
                    assert_eq!(out.result.itemsets, full.itemsets, "{ctx}")
                }
                RunStatus::Truncated(reason) => {
                    assert_eq!(reason, TruncationReason::WorkLimitExceeded, "{ctx}")
                }
            }
        }
    }
}

#[test]
fn ten_thousand_candidate_budget_on_low_support_apriori() {
    // The acceptance scenario from the issue: Apriori at a pathologically
    // low min-support under a 10k-candidate budget returns Truncated with
    // a downward-closed subset of the ungoverned run.
    let db = synthetic_db();
    let miner = Apriori::new(MinSupport::Count(1));
    let full = miner.mine(&db).unwrap();
    let guard = Guard::new(Budget::unlimited().with_max_work(10_000));
    let out = miner.mine_governed(&db, &guard).unwrap();
    assert!(
        matches!(
            out.status,
            RunStatus::Truncated(TruncationReason::WorkLimitExceeded)
        ),
        "expected truncation, got {:?}",
        out.status
    );
    assert!(guard.work_done() <= 10_000);
    assert!(!out.result.itemsets.is_empty(), "partial result preserved");
    assert!(out.result.itemsets.verify_downward_closure());
    assert_subset(&out.result.itemsets, &full.itemsets, "apriori 10k budget");
}

#[test]
fn brute_force_truncation_keeps_complete_levels() {
    let db = small_db();
    let miner = BruteForce::new(MinSupport::Count(1));
    let full = miner.mine(&db).unwrap();
    for max_work in [0u64, 6, 6 + 15, 6 + 15 + 20] {
        let guard = Guard::new(Budget::unlimited().with_max_work(max_work));
        let out = miner.mine_governed(&db, &guard).unwrap();
        assert!(guard.work_done() <= max_work);
        assert!(out.result.itemsets.verify_downward_closure());
        assert_subset(&out.result.itemsets, &full.itemsets, "brute");
        // Size-major enumeration: each completed level is *exactly* the
        // full run's level, not a fragment of it.
        for k in 1..=out.result.itemsets.max_len() {
            assert_eq!(
                out.result.itemsets.level(k),
                full.itemsets.level(k),
                "brute level {k} under max_work {max_work}"
            );
        }
    }
}

#[test]
fn pre_cancelled_token_stops_every_miner_immediately() {
    let db = small_db();
    let token = CancelToken::new();
    token.cancel();
    for miner in all_miners(MinSupport::Count(2)) {
        let guard = Guard::with_token(Budget::unlimited(), token.clone());
        let out = miner.mine_governed(&db, &guard).unwrap();
        assert_eq!(
            out.status,
            RunStatus::Truncated(TruncationReason::Cancelled),
            "{}",
            miner.name()
        );
        assert!(out.result.itemsets.is_empty(), "{}", miner.name());
    }
}

#[test]
fn cross_thread_cancellation_upholds_invariants() {
    let db = synthetic_db();
    for miner in all_miners(MinSupport::Count(2)) {
        let full = miner.mine(&db).unwrap();
        let token = CancelToken::new();
        let guard = Guard::with_token(Budget::unlimited(), token.clone());
        let out = std::thread::scope(|scope| {
            let canceller = scope.spawn({
                let token = token.clone();
                move || token.cancel()
            });
            let out = miner.mine_governed(&db, &guard).unwrap();
            canceller.join().unwrap();
            out
        });
        // The race is real: the miner may finish before the flag lands.
        // Whatever the outcome, the result must be a valid prefix.
        let ctx = format!("{} under concurrent cancel", miner.name());
        assert!(out.result.itemsets.verify_downward_closure(), "{ctx}");
        assert_subset(&out.result.itemsets, &full.itemsets, &ctx);
        match out.status {
            RunStatus::Complete => assert_eq!(out.result.itemsets, full.itemsets, "{ctx}"),
            RunStatus::Truncated(reason) => {
                assert_eq!(reason, TruncationReason::Cancelled, "{ctx}")
            }
        }
    }
}

#[test]
fn expired_deadline_truncates_every_miner() {
    let db = small_db();
    for miner in all_miners(MinSupport::Count(2)) {
        let guard = Guard::new(Budget::unlimited().with_deadline_ms(0));
        let out = miner.mine_governed(&db, &guard).unwrap();
        assert_eq!(
            out.status,
            RunStatus::Truncated(TruncationReason::DeadlineExceeded),
            "{}",
            miner.name()
        );
    }
}

#[test]
fn unlimited_guard_matches_ungoverned_run_exactly() {
    let db = synthetic_db();
    for min in [MinSupport::Count(2), MinSupport::Count(4)] {
        for miner in all_miners(min) {
            let plain = miner.mine(&db).unwrap();
            let guard = Guard::unlimited();
            let out = miner.mine_governed(&db, &guard).unwrap();
            assert!(out.is_complete(), "{}", miner.name());
            assert_eq!(out.result.itemsets, plain.itemsets, "{}", miner.name());
        }
    }
    // Brute force on its small universe.
    let db = small_db();
    let brute = BruteForce::new(MinSupport::Count(1));
    let plain = brute.mine(&db).unwrap();
    let out = brute.mine_governed(&db, &Guard::unlimited()).unwrap();
    assert!(out.is_complete());
    assert_eq!(out.result.itemsets, plain.itemsets);
}

#[test]
fn parallel_governed_mining_matches_sequential() {
    use dm_par::Parallelism;
    let db = synthetic_db();
    for max_work in [512u64, 10_000] {
        let seq_guard = Guard::new(Budget::unlimited().with_max_work(max_work));
        let seq = Apriori::new(MinSupport::Count(1))
            .mine_governed(&db, &seq_guard)
            .unwrap();
        let par_guard = Guard::new(Budget::unlimited().with_max_work(max_work));
        let par = Apriori::new(MinSupport::Count(1))
            .with_parallelism(Parallelism::Threads(4))
            .mine_governed(&db, &par_guard)
            .unwrap();
        assert_eq!(seq.status, par.status, "max_work {max_work}");
        assert_eq!(
            seq.result.itemsets, par.result.itemsets,
            "max_work {max_work}"
        );
    }
}
