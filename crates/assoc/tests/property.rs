//! Property tests: the production miners must agree with the exhaustive
//! oracle on arbitrary small databases, and the structural invariants of
//! frequent-itemset mining must hold.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_assoc::{
    Ais, Apriori, AprioriHybrid, AprioriTid, BruteForce, CountingStrategy, ItemsetMiner,
    MinSupport, RuleGenerator, Setm,
};
use dm_dataset::TransactionDb;
use proptest::prelude::*;

/// Strategy: a database of up to 24 transactions over up to 10 items.
fn small_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..10, 0..6), 1..24).prop_map(TransactionDb::new)
}

/// Deterministic Fisher–Yates driven by a splitmix64 stream: turns a
/// bare u64 from proptest into a permutation of `0..n`.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_match_brute_force(db in small_db(), min in 1usize..6) {
        let oracle = BruteForce::new(MinSupport::Count(min)).mine(&db).unwrap();
        let apriori = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        let linear = Apriori::new(MinSupport::Count(min))
            .with_counting(CountingStrategy::Linear)
            .mine(&db)
            .unwrap();
        let tid = AprioriTid::new(MinSupport::Count(min)).mine(&db).unwrap();
        let ais = Ais::new(MinSupport::Count(min)).mine(&db).unwrap();
        let setm = Setm::new(MinSupport::Count(min)).mine(&db).unwrap();
        let hybrid_hi = AprioriHybrid::new(MinSupport::Count(min)).mine(&db).unwrap();
        let hybrid_lo = AprioriHybrid::new(MinSupport::Count(min))
            .with_tid_budget(0)
            .mine(&db)
            .unwrap();
        prop_assert_eq!(&oracle.itemsets, &apriori.itemsets);
        prop_assert_eq!(&oracle.itemsets, &linear.itemsets);
        prop_assert_eq!(&oracle.itemsets, &tid.itemsets);
        prop_assert_eq!(&oracle.itemsets, &ais.itemsets);
        prop_assert_eq!(&oracle.itemsets, &setm.itemsets);
        prop_assert_eq!(&oracle.itemsets, &hybrid_hi.itemsets);
        prop_assert_eq!(&oracle.itemsets, &hybrid_lo.itemsets);
    }

    #[test]
    fn downward_closure_holds(db in small_db(), min in 1usize..5) {
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        prop_assert!(mined.itemsets.verify_downward_closure());
    }

    #[test]
    fn supports_match_reference_counter(db in small_db(), min in 1usize..5) {
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        for (itemset, count) in mined.itemsets.iter() {
            prop_assert_eq!(count, db.support_count(itemset));
            prop_assert!(count >= min);
        }
    }

    #[test]
    fn rules_respect_confidence_and_derive_from_frequent_sets(
        db in small_db(),
        min in 1usize..4,
        conf in 0.1f64..1.0,
    ) {
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        let rules = RuleGenerator::new(conf).generate(&mined.itemsets).unwrap();
        for r in &rules {
            prop_assert!(r.confidence >= conf - 1e-12);
            prop_assert!(r.confidence <= 1.0 + 1e-12);
            prop_assert!(r.support > 0.0 && r.support <= 1.0);
            prop_assert!(r.lift > 0.0);
            // Confidence is exactly supp(A∪C)/supp(A) per the database.
            let mut union: Vec<u32> = r.antecedent.iter().chain(&r.consequent).copied().collect();
            union.sort_unstable();
            let expected = db.support_count(&union) as f64 / db.support_count(&r.antecedent) as f64;
            prop_assert!((r.confidence - expected).abs() < 1e-12);
        }
    }

    /// Every reported rule metric must match a from-scratch
    /// recomputation out of raw support counts — the generator's
    /// incremental bookkeeping (reusing parent supports across the
    /// consequent lattice) is an optimization, never a redefinition.
    #[test]
    fn rule_metrics_match_brute_force_recomputation(
        db in small_db(),
        min in 1usize..4,
        conf in 0.1f64..1.0,
    ) {
        let mined = BruteForce::new(MinSupport::Count(min)).mine(&db).unwrap();
        let rules = RuleGenerator::new(conf).generate(&mined.itemsets).unwrap();
        let n = db.len() as f64;
        for r in &rules {
            let mut union: Vec<u32> =
                r.antecedent.iter().chain(&r.consequent).copied().collect();
            union.sort_unstable();
            let supp_union = db.support_count(&union) as f64;
            let supp_a = db.support_count(&r.antecedent) as f64;
            let supp_c = db.support_count(&r.consequent) as f64;
            prop_assert!(supp_a > 0.0 && supp_c > 0.0, "rule over unseen itemsets");
            prop_assert!(
                (r.support - supp_union / n).abs() < 1e-12,
                "support: reported {} vs recomputed {}", r.support, supp_union / n
            );
            prop_assert!(
                (r.confidence - supp_union / supp_a).abs() < 1e-12,
                "confidence: reported {} vs recomputed {}", r.confidence, supp_union / supp_a
            );
            let lift = (supp_union * n) / (supp_a * supp_c);
            prop_assert!(
                (r.lift - lift).abs() < 1e-9,
                "lift: reported {} vs recomputed {}", r.lift, lift
            );
        }
    }

    #[test]
    fn rule_generation_is_exhaustive(db in small_db(), min in 1usize..4) {
        // Every (antecedent ⇒ consequent) partition of every frequent
        // itemset meeting the bar must be emitted (checked for 2-sets
        // where enumeration is trivial).
        let conf = 0.6;
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        let rules = RuleGenerator::new(conf).generate(&mined.itemsets).unwrap();
        for (itemset, count) in mined.itemsets.level(2) {
            for (a, c) in [(itemset[0], itemset[1]), (itemset[1], itemset[0])] {
                let expected_conf = *count as f64 / db.support_count(&[a]) as f64;
                let present = rules
                    .iter()
                    .any(|r| r.antecedent == vec![a] && r.consequent == vec![c]);
                prop_assert_eq!(present, expected_conf >= conf,
                    "rule {}=>{} conf {}", a, c, expected_conf);
            }
        }
    }

    /// Metamorphic invariance: frequent-itemset mining is a function of
    /// the *multiset of item sets*, so permuting transaction order and
    /// relabeling items through any bijection must leave the mined
    /// itemsets (modulo the relabeling) untouched, for every miner.
    ///
    /// The per-pass work profile (candidate / frequent counts) is also
    /// invariant, with one genuine exception: AIS and SETM extend
    /// *item-ordered prefixes* found in transactions, so relabeling
    /// changes which candidate sets they generate (a candidate survives
    /// only if its (k-1)-prefix in the new item order is frequent).
    /// Their profiles are therefore only asserted invariant under
    /// transaction reordering; the Apriori family and the oracle are
    /// order-canonical and must hold the full invariant.
    #[test]
    fn mining_is_invariant_under_permutation_and_relabeling(
        txns in prop::collection::vec(prop::collection::vec(0u32..10, 0..6), 1..24),
        order_seed in 0u64..u64::MAX,
        relabel_seed in 0u64..u64::MAX,
        min in 1usize..5,
    ) {
        let txn_order = permutation(txns.len(), order_seed);
        let item_map: Vec<u32> = permutation(10, relabel_seed)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        let base = TransactionDb::with_universe(txns.clone(), 10).unwrap();
        let reordered_txns: Vec<Vec<u32>> =
            txn_order.iter().map(|&i| txns[i].clone()).collect();
        let reordered = TransactionDb::with_universe(reordered_txns.clone(), 10).unwrap();
        let relabeled_txns: Vec<Vec<u32>> = reordered_txns
            .iter()
            .map(|txn| txn.iter().map(|&it| item_map[it as usize]).collect())
            .collect();
        let relabeled = TransactionDb::with_universe(relabeled_txns, 10).unwrap();

        let profile = |r: &dm_assoc::MiningResult| -> Vec<(usize, usize)> {
            r.stats.passes.iter().map(|p| (p.candidates, p.frequent)).collect()
        };
        let miners: Vec<(bool, Box<dyn ItemsetMiner>)> = vec![
            (true, Box::new(BruteForce::new(MinSupport::Count(min)))),
            (true, Box::new(Apriori::new(MinSupport::Count(min)))),
            (true, Box::new(AprioriTid::new(MinSupport::Count(min)))),
            (false, Box::new(Ais::new(MinSupport::Count(min)))),
            (false, Box::new(Setm::new(MinSupport::Count(min)))),
            (true, Box::new(AprioriHybrid::new(MinSupport::Count(min)))),
        ];
        for (order_canonical, miner) in miners {
            let a = miner.mine(&base).unwrap();
            let b = miner.mine(&reordered).unwrap();
            let c = miner.mine(&relabeled).unwrap();

            // Transaction order: full invariance for everyone.
            prop_assert_eq!(&a.itemsets, &b.itemsets, "{}: itemsets moved on reorder", miner.name());
            prop_assert_eq!(profile(&a), profile(&b), "{}: profile moved on reorder", miner.name());

            // Relabeling: itemsets agree modulo the bijection (with counts).
            let mut mapped: Vec<(Vec<u32>, usize)> = a
                .itemsets
                .iter()
                .map(|(set, count)| {
                    let mut m: Vec<u32> = set.iter().map(|&it| item_map[it as usize]).collect();
                    m.sort_unstable();
                    (m, count)
                })
                .collect();
            mapped.sort();
            let mut mined: Vec<(Vec<u32>, usize)> = c
                .itemsets
                .iter()
                .map(|(set, count)| (set.to_vec(), count))
                .collect();
            mined.sort();
            prop_assert_eq!(&mapped, &mined, "{}: itemsets moved on relabel", miner.name());

            if order_canonical {
                prop_assert_eq!(
                    profile(&a), profile(&c),
                    "{}: profile moved on relabel", miner.name()
                );
            } else {
                // AIS/SETM profiles may shift, but frequent counts per
                // pass are determined by the itemsets and cannot —
                // except for a possible final all-infrequent pass, whose
                // existence depends on whether any candidate was
                // generated at all (trailing zeros stripped).
                let frequent = |r: &dm_assoc::MiningResult| -> Vec<usize> {
                    let mut f: Vec<usize> =
                        r.stats.passes.iter().map(|p| p.frequent).collect();
                    while f.last() == Some(&0) {
                        f.pop();
                    }
                    f
                };
                prop_assert_eq!(
                    frequent(&a), frequent(&c),
                    "{}: frequent-per-pass moved on relabel", miner.name()
                );
            }
        }
    }

    #[test]
    fn fraction_and_count_thresholds_agree(db in small_db()) {
        let n = db.len();
        let frac = 0.3;
        let by_frac = Apriori::new(MinSupport::Fraction(frac)).mine(&db).unwrap();
        let count = ((frac * n as f64).ceil() as usize).max(1);
        let by_count = Apriori::new(MinSupport::Count(count)).mine(&db).unwrap();
        prop_assert_eq!(by_frac.itemsets, by_count.itemsets);
    }
}
