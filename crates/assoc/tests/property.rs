//! Property tests: the production miners must agree with the exhaustive
//! oracle on arbitrary small databases, and the structural invariants of
//! frequent-itemset mining must hold.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_assoc::{
    Ais, Apriori, AprioriHybrid, AprioriTid, BruteForce, CountingStrategy, ItemsetMiner,
    MinSupport, RuleGenerator, Setm,
};
use dm_dataset::TransactionDb;
use proptest::prelude::*;

/// Strategy: a database of up to 24 transactions over up to 10 items.
fn small_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..10, 0..6), 1..24).prop_map(TransactionDb::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_match_brute_force(db in small_db(), min in 1usize..6) {
        let oracle = BruteForce::new(MinSupport::Count(min)).mine(&db).unwrap();
        let apriori = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        let linear = Apriori::new(MinSupport::Count(min))
            .with_counting(CountingStrategy::Linear)
            .mine(&db)
            .unwrap();
        let tid = AprioriTid::new(MinSupport::Count(min)).mine(&db).unwrap();
        let ais = Ais::new(MinSupport::Count(min)).mine(&db).unwrap();
        let setm = Setm::new(MinSupport::Count(min)).mine(&db).unwrap();
        let hybrid_hi = AprioriHybrid::new(MinSupport::Count(min)).mine(&db).unwrap();
        let hybrid_lo = AprioriHybrid::new(MinSupport::Count(min))
            .with_tid_budget(0)
            .mine(&db)
            .unwrap();
        prop_assert_eq!(&oracle.itemsets, &apriori.itemsets);
        prop_assert_eq!(&oracle.itemsets, &linear.itemsets);
        prop_assert_eq!(&oracle.itemsets, &tid.itemsets);
        prop_assert_eq!(&oracle.itemsets, &ais.itemsets);
        prop_assert_eq!(&oracle.itemsets, &setm.itemsets);
        prop_assert_eq!(&oracle.itemsets, &hybrid_hi.itemsets);
        prop_assert_eq!(&oracle.itemsets, &hybrid_lo.itemsets);
    }

    #[test]
    fn downward_closure_holds(db in small_db(), min in 1usize..5) {
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        prop_assert!(mined.itemsets.verify_downward_closure());
    }

    #[test]
    fn supports_match_reference_counter(db in small_db(), min in 1usize..5) {
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        for (itemset, count) in mined.itemsets.iter() {
            prop_assert_eq!(count, db.support_count(itemset));
            prop_assert!(count >= min);
        }
    }

    #[test]
    fn rules_respect_confidence_and_derive_from_frequent_sets(
        db in small_db(),
        min in 1usize..4,
        conf in 0.1f64..1.0,
    ) {
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        let rules = RuleGenerator::new(conf).generate(&mined.itemsets).unwrap();
        for r in &rules {
            prop_assert!(r.confidence >= conf - 1e-12);
            prop_assert!(r.confidence <= 1.0 + 1e-12);
            prop_assert!(r.support > 0.0 && r.support <= 1.0);
            prop_assert!(r.lift > 0.0);
            // Confidence is exactly supp(A∪C)/supp(A) per the database.
            let mut union: Vec<u32> = r.antecedent.iter().chain(&r.consequent).copied().collect();
            union.sort_unstable();
            let expected = db.support_count(&union) as f64 / db.support_count(&r.antecedent) as f64;
            prop_assert!((r.confidence - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn rule_generation_is_exhaustive(db in small_db(), min in 1usize..4) {
        // Every (antecedent ⇒ consequent) partition of every frequent
        // itemset meeting the bar must be emitted (checked for 2-sets
        // where enumeration is trivial).
        let conf = 0.6;
        let mined = Apriori::new(MinSupport::Count(min)).mine(&db).unwrap();
        let rules = RuleGenerator::new(conf).generate(&mined.itemsets).unwrap();
        for (itemset, count) in mined.itemsets.level(2) {
            for (a, c) in [(itemset[0], itemset[1]), (itemset[1], itemset[0])] {
                let expected_conf = *count as f64 / db.support_count(&[a]) as f64;
                let present = rules
                    .iter()
                    .any(|r| r.antecedent == vec![a] && r.consequent == vec![c]);
                prop_assert_eq!(present, expected_conf >= conf,
                    "rule {}=>{} conf {}", a, c, expected_conf);
            }
        }
    }

    #[test]
    fn fraction_and_count_thresholds_agree(db in small_db()) {
        let n = db.len();
        let frac = 0.3;
        let by_frac = Apriori::new(MinSupport::Fraction(frac)).mine(&db).unwrap();
        let count = ((frac * n as f64).ceil() as usize).max(1);
        let by_count = Apriori::new(MinSupport::Count(count)).mine(&db).unwrap();
        prop_assert_eq!(by_frac.itemsets, by_count.itemsets);
    }
}
