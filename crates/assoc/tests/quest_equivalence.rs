//! The cross-algorithm output contract on synthetic Quest workloads:
//! FP-Growth ≡ Eclat ≡ Apriori (≡ the brute-force oracle on small
//! universes), as **bit-identical** [`FrequentItemsets`] — same itemsets,
//! same support counts, same sorted order — under every front-door
//! method, governed and ungoverned.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_assoc::{
    mine, Apriori, BruteForce, Eclat, FpGrowth, ItemsetMiner, Method, MinSupport, MiningResult,
};
use dm_dataset::TransactionDb;
use dm_guard::Guard;
use dm_synth::{QuestConfig, QuestGenerator};

fn quest(t: f64, i: f64, d: usize, seed: u64) -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(t, i, d), 101)
        .unwrap()
        .generate(seed)
}

fn assert_result_identical(a: &MiningResult, b: &MiningResult, ctx: &str) {
    assert_eq!(a.itemsets, b.itemsets, "{ctx}");
}

#[test]
fn fp_growth_and_eclat_match_apriori_on_quest_workloads() {
    let workloads = [
        quest(6.0, 3.0, 300, 202),
        quest(10.0, 4.0, 400, 7),
        quest(4.0, 2.0, 250, 99),
    ];
    for (w, db) in workloads.iter().enumerate() {
        for min in [
            MinSupport::Fraction(0.02),
            MinSupport::Fraction(0.01),
            MinSupport::Count(3),
        ] {
            let apriori = Apriori::new(min).mine(db).unwrap();
            let fp = FpGrowth::new(min).mine(db).unwrap();
            let eclat = Eclat::new(min).mine(db).unwrap();
            assert_result_identical(&fp, &apriori, &format!("fp-growth, workload {w} {min:?}"));
            assert_result_identical(&eclat, &apriori, &format!("eclat, workload {w} {min:?}"));
            assert!(fp.itemsets.verify_downward_closure());
        }
    }
}

#[test]
fn every_front_door_method_matches_the_brute_oracle() {
    // Small item universe so the exhaustive oracle stays cheap.
    let db = TransactionDb::new(
        (0..120u32)
            .map(|t| (0..10).filter(|i| (t * 31 + i * 17) % 4 != 0).collect())
            .collect(),
    );
    for min in [MinSupport::Count(8), MinSupport::Fraction(0.25)] {
        let oracle = BruteForce::new(min).mine(&db).unwrap();
        for method in [
            Method::Auto,
            Method::Apriori,
            Method::AprioriTid,
            Method::Hybrid,
            Method::FpGrowth,
            Method::Eclat,
        ] {
            let result = mine(&db, min, method).unwrap();
            assert_eq!(result.itemsets, oracle.itemsets, "{method:?} {min:?}");
        }
    }
}

#[test]
fn vertical_pass2_matches_on_quest() {
    let db = quest(8.0, 3.0, 400, 11);
    for min in [MinSupport::Fraction(0.02), MinSupport::Fraction(0.005)] {
        let plain = Apriori::new(min).mine(&db).unwrap();
        let vertical = Apriori::new(min)
            .with_vertical_pass2(true)
            .mine(&db)
            .unwrap();
        assert_eq!(plain.itemsets, vertical.itemsets, "{min:?}");
    }
}

#[test]
fn governed_unlimited_matches_ungoverned_for_new_miners() {
    let db = quest(6.0, 3.0, 300, 5);
    let min = MinSupport::Fraction(0.01);
    for miner in [
        Box::new(FpGrowth::new(min)) as Box<dyn ItemsetMiner>,
        Box::new(Eclat::new(min)),
    ] {
        let plain = miner.mine(&db).unwrap();
        let governed = miner.mine_governed(&db, &Guard::unlimited()).unwrap();
        assert!(governed.is_complete(), "{}", miner.name());
        assert_eq!(governed.result.itemsets, plain.itemsets, "{}", miner.name());
    }
}
