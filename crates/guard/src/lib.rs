//! Resource governance for long-running mining algorithms.
//!
//! The survey's headline algorithms all have pathological blow-up modes:
//! Apriori's candidate set is exponential at low min-support, PAM / CLARANS /
//! agglomerative clustering are superquadratic, SETM materializes an
//! occurrence relation that can dwarf the database. A production system must
//! bound the work it spends on one query, stay cancellable from the outside,
//! and degrade gracefully with a partial result instead of hanging or dying.
//!
//! This crate provides the three pieces every governed entry point shares:
//!
//! - [`Budget`] — a declarative resource limit: wall-clock deadline, maximum
//!   work units (candidates counted, nodes grown, points processed, ...),
//!   and maximum iterations. Checked *cooperatively* at pass / batch
//!   boundaries; nothing is preempted.
//! - [`CancelToken`] — an `Arc<AtomicBool>` flag that another thread can
//!   flip at any time. Workers poll it through their [`Guard`], so parallel
//!   shards stop within one check interval too.
//! - [`Outcome`] / [`RunStatus`] — governed entry points return the best
//!   valid partial result together with a status saying whether the run
//!   completed or was truncated (and why).
//!
//! A [`Guard`] bundles a budget and a token with the run's start time and
//! latches the *first* reason it trips: once tripped, every subsequent check
//! fails with the same [`TruncationReason`], so a run's status is stable no
//! matter how many sites observe the trip.
//!
//! # Check-site discipline
//!
//! Algorithms call [`Guard::check`] (or [`Guard::should_stop`]) at pass /
//! iteration / chunk boundaries and roughly every few hundred items inside
//! tight loops, [`Guard::try_work`] *before* admitting a batch of work units
//! (so a work cap is never exceeded), and [`Guard::next_iteration`] once per
//! outer iteration. On a mid-pass trip the caller discards the incomplete
//! pass and returns everything confirmed through the last completed one —
//! which is what keeps truncated frequent-itemset results downward closed
//! and a subset of the ungoverned run.
//!
//! # Fail points
//!
//! With the `failpoints` feature, [`Guard::with_failpoint`] arms a
//! deterministic per-guard counter that trips the guard at the N-th check
//! site. The property tests sweep N to simulate exhaustion at arbitrary
//! points and assert: no panic, truncated results uphold their invariants,
//! and an unarmed unlimited guard is bit-identical to an ungoverned run.

//! # Observability
//!
//! A guard can carry a [`dm_obs::Recorder`] ([`Guard::with_recorder`]);
//! instrumented algorithms reach it through [`Guard::obs`]. Because the
//! guard already flows through every governed entry point and every
//! `dm_par` worker, attaching a recorder needs no signature changes
//! anywhere. Without one, [`Guard::obs`] hands out the no-op recorder,
//! whose emissions compile to a predictable branch — the measured
//! overhead is within noise (`ledger/bench-obs.json`). The guard itself emits a
//! `guard.trip` event (with the reason) and a `guard.work_admitted`
//! watermark gauge the moment its first limit latches.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use dm_obs::{Obs, Recorder};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// Admitting the next batch of work units would exceed the work cap.
    WorkLimitExceeded,
    /// The iteration cap was reached.
    IterationLimitReached,
    /// The [`CancelToken`] was cancelled from outside.
    Cancelled,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            Self::WorkLimitExceeded => write!(f, "work-unit budget exhausted"),
            Self::IterationLimitReached => write!(f, "iteration limit reached"),
            Self::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Whether a governed run finished or returned a partial result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// The run finished; the result is identical to an ungoverned run.
    Complete,
    /// The run stopped early; the result is the best valid partial result.
    Truncated(TruncationReason),
}

impl RunStatus {
    /// `true` when the run finished without tripping any limit.
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete)
    }
}

/// A governed result: the best valid (possibly partial) result plus the
/// status under which it was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome<T> {
    /// The result — complete, or the best valid partial result.
    pub result: T,
    /// Whether the run completed or was truncated (and why).
    pub status: RunStatus,
}

impl<T> Outcome<T> {
    /// Wraps a finished result.
    pub fn complete(result: T) -> Self {
        Self {
            result,
            status: RunStatus::Complete,
        }
    }

    /// `true` when the run finished without truncation.
    pub fn is_complete(&self) -> bool {
        self.status.is_complete()
    }

    /// The truncation reason, if the run was cut short.
    pub fn truncation(&self) -> Option<TruncationReason> {
        match self.status {
            RunStatus::Complete => None,
            RunStatus::Truncated(r) => Some(r),
        }
    }

    /// Maps the result, preserving the status.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            result: f(self.result),
            status: self.status,
        }
    }
}

/// A cooperative cancellation flag, cheaply cloneable across threads.
///
/// Cancellation is observed by governed runs within one check interval
/// (one pass/iteration boundary or a few hundred items of a tight loop).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Declarative resource limits for one governed run.
///
/// All limits are optional; [`Budget::unlimited`] never trips. Limits
/// compose: the run stops at whichever is hit first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from [`Guard`] construction.
    pub deadline: Option<Duration>,
    /// Maximum admitted work units (candidates, nodes, points — the
    /// governed algorithm documents its unit).
    pub max_work: Option<u64>,
    /// Maximum outer iterations (Lloyd iterations, SWAP passes, ...).
    pub max_iterations: Option<u64>,
}

impl Budget {
    /// A budget that never trips.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Caps total admitted work units.
    pub fn with_max_work(mut self, units: u64) -> Self {
        self.max_work = Some(units);
        self
    }

    /// Caps outer iterations.
    pub fn with_max_iterations(mut self, iters: u64) -> Self {
        self.max_iterations = Some(iters);
        self
    }
}

/// Deterministic fail-point injection state (per guard, no globals).
#[cfg(feature = "failpoints")]
#[derive(Debug)]
struct FailPoint {
    /// Trip when the check counter reaches this value.
    trip_at: u64,
    /// The reason to inject.
    reason: TruncationReason,
    /// Number of check sites observed so far.
    checks: AtomicU64,
}

/// The run-time governor: a [`Budget`] + [`CancelToken`] bound to a start
/// time, with a latched trip state.
///
/// A `Guard` is `Sync`; share it by reference with parallel workers. The
/// first limit to trip is latched — every later check reports the same
/// [`TruncationReason`], so the run's final status is unambiguous.
pub struct Guard {
    budget: Budget,
    token: CancelToken,
    start: Instant,
    work: AtomicU64,
    iterations: AtomicU64,
    /// 0 = not tripped; otherwise `encode(reason)`.
    tripped: AtomicU8,
    /// Metrics sink shared with every instrumentation site this guard
    /// reaches; `None` means the no-op recorder.
    recorder: Option<Arc<dyn Recorder>>,
    #[cfg(feature = "failpoints")]
    failpoint: Option<FailPoint>,
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard")
            .field("budget", &self.budget)
            .field("work", &self.work)
            .field("iterations", &self.iterations)
            .field("tripped", &self.tripped)
            .field("recorded", &self.recorder.is_some())
            .finish()
    }
}

const fn encode(reason: TruncationReason) -> u8 {
    match reason {
        TruncationReason::DeadlineExceeded => 1,
        TruncationReason::WorkLimitExceeded => 2,
        TruncationReason::IterationLimitReached => 3,
        TruncationReason::Cancelled => 4,
    }
}

fn decode(v: u8) -> Option<TruncationReason> {
    match v {
        1 => Some(TruncationReason::DeadlineExceeded),
        2 => Some(TruncationReason::WorkLimitExceeded),
        3 => Some(TruncationReason::IterationLimitReached),
        4 => Some(TruncationReason::Cancelled),
        _ => None,
    }
}

impl Guard {
    /// A guard over `budget` with a fresh cancel token.
    pub fn new(budget: Budget) -> Self {
        Self::with_token(budget, CancelToken::new())
    }

    /// A guard that never trips (the governed path's identity element).
    pub fn unlimited() -> Self {
        Self::new(Budget::unlimited())
    }

    /// A guard over `budget` observing an existing token, so another
    /// thread holding a clone of `token` can cancel this run.
    pub fn with_token(budget: Budget, token: CancelToken) -> Self {
        Self {
            budget,
            token,
            start: Instant::now(),
            work: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
            recorder: None,
            #[cfg(feature = "failpoints")]
            failpoint: None,
        }
    }

    /// Attaches a metrics recorder; instrumentation sites reached by this
    /// guard emit into it via [`Guard::obs`].
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached recorder, if any. Lets a subsystem that owns its own
    /// threads (a serving worker pool, say) clone the sink out of a
    /// request guard and keep emitting after the guard is gone.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.recorder.clone()
    }

    /// The observability handle for this guard: the attached recorder, or
    /// the no-op recorder (whose emissions are a dead branch) if none.
    pub fn obs(&self) -> Obs<'_> {
        match self.recorder.as_deref() {
            Some(rec) => Obs::new(rec),
            None => Obs::noop(),
        }
    }

    /// Arms a deterministic fail point: the guard trips with `reason` at
    /// the `trip_at`-th check site (0 = the very first check).
    #[cfg(feature = "failpoints")]
    pub fn with_failpoint(mut self, trip_at: u64, reason: TruncationReason) -> Self {
        self.failpoint = Some(FailPoint {
            trip_at,
            reason,
            checks: AtomicU64::new(0),
        });
        self
    }

    /// A clone of the cancel token observed by this guard.
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// The budget this guard enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Total work units admitted so far via [`Guard::try_work`].
    pub fn work_done(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// Latches `reason` if nothing tripped yet; returns the effective
    /// (first-latched) reason.
    fn trip(&self, reason: TruncationReason) -> TruncationReason {
        match self
            .tripped
            .compare_exchange(0, encode(reason), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                let obs = self.obs();
                if obs.enabled() {
                    obs.event("guard.trip", &reason.to_string());
                    obs.gauge(
                        "guard.work_admitted",
                        self.work.load(Ordering::Relaxed) as f64,
                    );
                }
                reason
            }
            Err(prev) => decode(prev).unwrap_or(reason),
        }
    }

    #[cfg(feature = "failpoints")]
    fn poll_failpoint(&self) -> Option<TruncationReason> {
        let fp = self.failpoint.as_ref()?;
        let seen = fp.checks.fetch_add(1, Ordering::AcqRel);
        (seen >= fp.trip_at).then_some(fp.reason)
    }

    #[cfg(not(feature = "failpoints"))]
    #[inline]
    fn poll_failpoint(&self) -> Option<TruncationReason> {
        None
    }

    /// One cooperative check site: fails if the guard has tripped, the
    /// token is cancelled, the deadline has passed, or an armed fail point
    /// fires. The first failure is latched.
    pub fn check(&self) -> Result<(), TruncationReason> {
        if let Some(r) = decode(self.tripped.load(Ordering::Acquire)) {
            return Err(r);
        }
        if let Some(r) = self.poll_failpoint() {
            return Err(self.trip(r));
        }
        if self.token.is_cancelled() {
            return Err(self.trip(TruncationReason::Cancelled));
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return Err(self.trip(TruncationReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// `true` when the run should stop (a `check()` convenience for loop
    /// conditions and worker polls).
    pub fn should_stop(&self) -> bool {
        self.check().is_err()
    }

    /// Admits `units` of work, failing *before* the work happens if it
    /// would exceed the cap — a capped run never performs more than
    /// `max_work` units. Also a check site (deadline / cancel / fail point).
    pub fn try_work(&self, units: u64) -> Result<(), TruncationReason> {
        self.check()?;
        if let Some(max) = self.budget.max_work {
            let done = self.work.load(Ordering::Relaxed);
            if done.saturating_add(units) > max {
                return Err(self.trip(TruncationReason::WorkLimitExceeded));
            }
        }
        self.work.fetch_add(units, Ordering::Relaxed);
        Ok(())
    }

    /// Admits one outer iteration, failing when the iteration cap is
    /// reached. Also a check site.
    pub fn next_iteration(&self) -> Result<(), TruncationReason> {
        self.check()?;
        let done = self.iterations.fetch_add(1, Ordering::Relaxed);
        if let Some(max) = self.budget.max_iterations {
            if done >= max {
                return Err(self.trip(TruncationReason::IterationLimitReached));
            }
        }
        Ok(())
    }

    /// The run's status so far: `Complete` if nothing tripped, otherwise
    /// `Truncated` with the first-latched reason.
    pub fn status(&self) -> RunStatus {
        match decode(self.tripped.load(Ordering::Acquire)) {
            None => RunStatus::Complete,
            Some(r) => RunStatus::Truncated(r),
        }
    }

    /// Wraps `result` with this guard's current status.
    pub fn outcome<T>(&self, result: T) -> Outcome<T> {
        Outcome {
            result,
            status: self.status(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            assert!(g.check().is_ok());
            assert!(g.try_work(1_000).is_ok());
            assert!(g.next_iteration().is_ok());
        }
        assert_eq!(g.status(), RunStatus::Complete);
        assert!(!g.should_stop());
    }

    #[test]
    fn work_cap_is_never_exceeded() {
        let g = Guard::new(Budget::unlimited().with_max_work(100));
        assert!(g.try_work(60).is_ok());
        assert_eq!(
            g.try_work(60),
            Err(TruncationReason::WorkLimitExceeded),
            "admitting 60 more would exceed the cap of 100"
        );
        assert!(g.work_done() <= 100);
        // Latched: even a tiny request now fails with the same reason.
        assert_eq!(g.try_work(1), Err(TruncationReason::WorkLimitExceeded));
        assert_eq!(
            g.status(),
            RunStatus::Truncated(TruncationReason::WorkLimitExceeded)
        );
    }

    #[test]
    fn iteration_cap_trips_after_n_iterations() {
        let g = Guard::new(Budget::unlimited().with_max_iterations(3));
        assert!(g.next_iteration().is_ok());
        assert!(g.next_iteration().is_ok());
        assert!(g.next_iteration().is_ok());
        assert_eq!(
            g.next_iteration(),
            Err(TruncationReason::IterationLimitReached)
        );
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Guard::new(Budget::unlimited().with_deadline(Duration::ZERO));
        assert_eq!(g.check(), Err(TruncationReason::DeadlineExceeded));
        assert_eq!(
            g.status(),
            RunStatus::Truncated(TruncationReason::DeadlineExceeded)
        );
    }

    #[test]
    fn cancel_token_trips_across_threads() {
        let g = Guard::unlimited();
        let token = g.cancel_token();
        assert!(g.check().is_ok());
        thread::spawn(move || token.cancel())
            .join()
            .expect("cancel thread");
        assert_eq!(g.check(), Err(TruncationReason::Cancelled));
        assert!(g.should_stop());
    }

    #[test]
    fn first_trip_reason_is_latched() {
        let token = CancelToken::new();
        let g = Guard::with_token(Budget::unlimited().with_max_work(10), token.clone());
        assert_eq!(g.try_work(11), Err(TruncationReason::WorkLimitExceeded));
        token.cancel();
        // The work-limit trip came first and sticks.
        assert_eq!(g.check(), Err(TruncationReason::WorkLimitExceeded));
        assert_eq!(
            g.status(),
            RunStatus::Truncated(TruncationReason::WorkLimitExceeded)
        );
    }

    #[test]
    fn outcome_helpers() {
        let g = Guard::unlimited();
        let o = g.outcome(vec![1, 2, 3]);
        assert!(o.is_complete());
        assert_eq!(o.truncation(), None);
        let o = o.map(|v| v.len());
        assert_eq!(o.result, 3);

        let g = Guard::new(Budget::unlimited().with_max_work(0));
        let _ = g.try_work(1);
        let o = g.outcome(());
        assert!(!o.is_complete());
        assert_eq!(o.truncation(), Some(TruncationReason::WorkLimitExceeded));
    }

    #[test]
    fn guard_without_recorder_hands_out_noop_obs() {
        let g = Guard::unlimited();
        assert!(!g.obs().enabled());
        // Emissions into the noop handle are silently dropped.
        g.obs().counter("x", 1);
        g.obs().gauge("y", 2.0);
    }

    #[test]
    fn trip_emits_event_and_work_watermark() {
        let rec = Arc::new(dm_obs::InMemoryRecorder::new());
        let g = Guard::new(Budget::unlimited().with_max_work(10)).with_recorder(rec.clone());
        assert!(g.obs().enabled());
        assert!(g.try_work(7).is_ok());
        assert_eq!(g.try_work(7), Err(TruncationReason::WorkLimitExceeded));
        // A later, different trip must not re-emit: first reason is latched.
        g.cancel_token().cancel();
        assert_eq!(g.check(), Err(TruncationReason::WorkLimitExceeded));

        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, "guard.trip");
        assert_eq!(snap.events[0].detail, "work-unit budget exhausted");
        assert_eq!(snap.gauge("guard.work_admitted"), Some(7.0));
    }

    #[test]
    fn untripped_guard_emits_nothing() {
        let rec = Arc::new(dm_obs::InMemoryRecorder::new());
        let g = Guard::unlimited().with_recorder(rec.clone());
        assert!(g.check().is_ok());
        assert!(g.try_work(5).is_ok());
        assert!(rec.snapshot().is_empty());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn failpoint_trips_at_nth_check_site() {
        let g = Guard::unlimited().with_failpoint(2, TruncationReason::Cancelled);
        assert!(g.check().is_ok()); // site 0
        assert!(g.check().is_ok()); // site 1
        assert_eq!(g.check(), Err(TruncationReason::Cancelled)); // site 2
        assert_eq!(
            g.status(),
            RunStatus::Truncated(TruncationReason::Cancelled)
        );
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn unarmed_guard_ignores_failpoints() {
        let g = Guard::unlimited();
        for _ in 0..1000 {
            assert!(g.check().is_ok());
        }
    }
}
