//! Small sampling toolbox: Poisson, Gaussian and exponential variates.
//!
//! The workspace's only sampling dependency is `rand` (uniform variates);
//! the classic distributions the generators need are derived here, which
//! keeps the dependency surface down and makes the exact sampling
//! algorithms part of the reproducible artifact.

use rand::Rng;

/// Samples a Poisson variate with mean `lambda` using Knuth's
/// multiplication method.
///
/// The method is exact and O(λ) per sample — fine for the small means
/// (transaction and pattern lengths ≲ 50) used by the generators.
///
/// # Panics
/// Panics if `lambda` is not finite and positive.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "poisson mean must be positive and finite"
    );
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples an exponential variate with the given mean (inverse-CDF).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Draws an index from `weights` proportionally to the weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_and_variance_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 10.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.15, "mean {mean}");
        assert!((var - lambda).abs() < 0.5, "var {var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_nonpositive_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        poisson(&mut rng, 0.0);
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
        assert!((0..1000).all(|_| exponential(&mut rng, 1.0) >= 0.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        let p1 = counts[1] as f64 / n as f64;
        let p2 = counts[2] as f64 / n as f64;
        assert!((p1 - 0.3).abs() < 0.02, "p1 {p1}");
        assert!((p2 - 0.6).abs() < 0.02, "p2 {p2}");
    }

    #[test]
    fn weighted_index_degenerate_single() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(weighted_index(&mut rng, &[42.0]), 0);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(poisson(&mut a, 5.0), poisson(&mut b, 5.0));
        }
    }
}
