//! Reservoir sampling (Vitter's algorithm R) for unbounded streams.
//!
//! A [`Reservoir`] holds a uniform random sample of fixed capacity over
//! however many items have been offered so far — the standard way to
//! bound memory against a stream whose length nobody knows. Like every
//! generator in this crate it is seeded and fully deterministic: the
//! same seed and offer sequence always keep the same sample, which is
//! what lets the streaming experiments gate on its contents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed-capacity uniform sample over an unbounded stream.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    sample: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl<T> Reservoir<T> {
    /// An empty reservoir keeping at most `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            sample: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offers one item. Returns `true` when the item entered the sample
    /// (the first `capacity` items always do; thereafter item `i` enters
    /// with probability `capacity / i`, evicting a uniform victim).
    pub fn offer(&mut self, item: T) -> bool {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(item);
            return true;
        }
        if self.capacity == 0 {
            return false;
        }
        let j = self.rng.gen_range(0..self.seen);
        if j < self.capacity as u64 {
            self.sample[j as usize] = item;
            true
        } else {
            false
        }
    }

    /// Offers every item of an iterator.
    pub fn extend(&mut self, items: impl IntoIterator<Item = T>) {
        for item in items {
            self.offer(item);
        }
    }

    /// The current sample (insertion order is not meaningful).
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Reservoir::new(10, 1);
        r.extend(0..7u32);
        assert_eq!(r.sample(), &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(r.seen(), 7);
    }

    #[test]
    fn bounds_memory_over_capacity() {
        let mut r = Reservoir::new(16, 2);
        r.extend(0..10_000u32);
        assert_eq!(r.sample().len(), 16);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Reservoir::new(8, 3);
        let mut b = Reservoir::new(8, 3);
        a.extend(0..1000u32);
        b.extend(0..1000u32);
        assert_eq!(a.sample(), b.sample());
        let mut c = Reservoir::new(8, 4);
        c.extend(0..1000u32);
        assert_ne!(a.sample(), c.sample());
    }

    #[test]
    fn roughly_uniform() {
        // Each of 0..200 should land in a size-50 reservoir with p=0.25;
        // averaging over many seeds the hit rate must concentrate there.
        let mut hits = vec![0u32; 200];
        for seed in 0..400 {
            let mut r = Reservoir::new(50, seed);
            r.extend(0..200u32);
            for &v in r.sample() {
                hits[v as usize] += 1;
            }
        }
        for (v, &h) in hits.iter().enumerate() {
            let rate = h as f64 / 400.0;
            assert!(
                (0.12..=0.42).contains(&rate),
                "item {v} kept at rate {rate}"
            );
        }
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut r = Reservoir::new(0, 5);
        r.extend(0..100u32);
        assert!(r.sample().is_empty());
        assert_eq!(r.seen(), 100);
    }
}
