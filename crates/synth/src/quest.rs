//! The IBM Quest synthetic market-basket generator.
//!
//! Reimplements the synthetic-data procedure of Agrawal & Srikant,
//! *"Fast Algorithms for Mining Association Rules"* (VLDB 1994), §4.1,
//! from its published description:
//!
//! 1. Draw `n_patterns` *maximal potentially large itemsets* L. Pattern
//!    lengths are Poisson with mean `avg_pattern_len`; a fraction of each
//!    pattern's items (exponentially distributed with mean
//!    `correlation`) is reused from the previous pattern, the rest are
//!    picked uniformly. Each pattern gets an exponentially distributed
//!    weight (normalized to sum 1) and a *corruption level* drawn from
//!    N(`corruption_mean`, `corruption_sd`) clamped to `[0, 1]`.
//! 2. Each transaction draws a Poisson length with mean `avg_txn_len`,
//!    then is filled by repeatedly picking weighted patterns. Before
//!    insertion a pattern is corrupted: items are dropped while a uniform
//!    variate is below the pattern's corruption level. A pattern that
//!    overflows the remaining budget is inserted anyway in half the
//!    cases and discarded otherwise (moved to the next transaction in
//!    the original; discarding preserves the same length statistics).
//!
//! The resulting databases reproduce the skewed support distribution
//! that drives the relative performance of AIS / Apriori / AprioriTid.

use crate::distributions::{exponential, normal, poisson, weighted_index};
use dm_dataset::{DataError, TransactionDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the Quest generator, named after the paper
/// (`T|T|.I|I|.D|D|` datasets).
#[derive(Debug, Clone)]
pub struct QuestConfig {
    /// `|D|` — number of transactions.
    pub n_transactions: usize,
    /// `|T|` — average transaction length (Poisson mean).
    pub avg_txn_len: f64,
    /// `|I|` — average size of the maximal potentially large itemsets.
    pub avg_pattern_len: f64,
    /// `|L|` — number of maximal potentially large itemsets.
    pub n_patterns: usize,
    /// `N` — number of distinct items.
    pub n_items: u32,
    /// Mean fraction of a pattern reused from its predecessor (paper: 0.25).
    pub correlation: f64,
    /// Mean corruption level (paper: 0.5).
    pub corruption_mean: f64,
    /// Corruption level standard deviation (paper: 0.1).
    pub corruption_sd: f64,
}

impl QuestConfig {
    /// The paper's standard configuration `T<t>.I<i>.D<d>` with `N = 1000`
    /// items and `|L| = 2000` patterns.
    pub fn standard(avg_txn_len: f64, avg_pattern_len: f64, n_transactions: usize) -> Self {
        Self {
            n_transactions,
            avg_txn_len,
            avg_pattern_len,
            n_patterns: 2000,
            n_items: 1000,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
        }
    }

    /// The conventional dataset name, e.g. `T10.I4.D100K`.
    pub fn name(&self) -> String {
        let d = self.n_transactions;
        let d_str = if d.is_multiple_of(1000) {
            format!("{}K", d / 1000)
        } else {
            d.to_string()
        };
        format!(
            "T{}.I{}.D{}",
            self.avg_txn_len as u64, self.avg_pattern_len as u64, d_str
        )
    }

    fn validate(&self) -> Result<(), DataError> {
        if self.n_items == 0 {
            return Err(DataError::InvalidParameter("n_items must be > 0".into()));
        }
        if self.avg_txn_len <= 0.0 || self.avg_pattern_len <= 0.0 {
            return Err(DataError::InvalidParameter(
                "average lengths must be positive".into(),
            ));
        }
        if self.n_patterns == 0 {
            return Err(DataError::InvalidParameter("n_patterns must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err(DataError::InvalidParameter(
                "correlation must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// One maximal potentially large itemset with its sampling weight and
/// corruption level.
#[derive(Debug, Clone)]
struct Pattern {
    items: Vec<u32>,
    weight: f64,
    corruption: f64,
}

/// The Quest generator: holds the pattern table and emits transaction
/// databases.
#[derive(Debug, Clone)]
pub struct QuestGenerator {
    config: QuestConfig,
    patterns: Vec<Pattern>,
    weights: Vec<f64>,
}

impl QuestGenerator {
    /// Builds the pattern table for `config` with the given seed.
    pub fn new(config: QuestConfig, seed: u64) -> Result<Self, DataError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut patterns: Vec<Pattern> = Vec::with_capacity(config.n_patterns);
        let mut weight_sum = 0.0;
        for p in 0..config.n_patterns {
            let len = (poisson(&mut rng, config.avg_pattern_len).max(1) as usize)
                .min(config.n_items as usize);
            let mut items: Vec<u32> = Vec::with_capacity(len);
            // Reuse a prefix of the previous pattern's items.
            if p > 0 && config.correlation > 0.0 {
                let frac = exponential(&mut rng, config.correlation).min(1.0);
                let prev = &patterns[p - 1].items;
                let n_reuse = ((frac * len as f64).round() as usize).min(prev.len());
                items.extend_from_slice(&prev[..n_reuse]);
            }
            while items.len() < len {
                let item = rng.gen_range(0..config.n_items);
                if !items.contains(&item) {
                    items.push(item);
                }
            }
            items.sort_unstable();
            items.dedup();
            let weight = exponential(&mut rng, 1.0);
            weight_sum += weight;
            let corruption =
                normal(&mut rng, config.corruption_mean, config.corruption_sd).clamp(0.0, 1.0);
            patterns.push(Pattern {
                items,
                weight,
                corruption,
            });
        }
        for p in &mut patterns {
            p.weight /= weight_sum;
        }
        let weights = patterns.iter().map(|p| p.weight).collect();
        Ok(Self {
            config,
            patterns,
            weights,
        })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }

    /// Generates the transaction database with the given seed
    /// (independent of the pattern-table seed).
    pub fn generate(&self, seed: u64) -> TransactionDb {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut txns = Vec::with_capacity(self.config.n_transactions);
        for _ in 0..self.config.n_transactions {
            txns.push(self.draw_transaction(&mut rng));
        }
        TransactionDb::with_universe(txns, self.config.n_items)
            .unwrap_or_else(|e| panic!("generator never emits out-of-universe items: {e}"))
    }

    /// Draws one raw transaction (items unsorted, duplicates possible —
    /// `TransactionDb` canonicalizes). Shared between batch [`generate`]
    /// and the unbounded [`crate::stream::TxnStream`], so both consume
    /// the RNG identically.
    ///
    /// [`generate`]: QuestGenerator::generate
    pub(crate) fn draw_transaction(&self, rng: &mut StdRng) -> Vec<u32> {
        let budget = (poisson(rng, self.config.avg_txn_len).max(1) as usize)
            .min(self.config.n_items as usize);
        let mut txn: Vec<u32> = Vec::with_capacity(budget + 4);
        // Guard against pathological configs where corruption ~ 1.0
        // could starve progress.
        let mut attempts = 0usize;
        while txn.len() < budget && attempts < budget * 8 + 16 {
            attempts += 1;
            let pat = &self.patterns[weighted_index(rng, &self.weights)];
            // Corrupt: drop items while u < corruption level.
            let mut kept: Vec<u32> = pat.items.clone();
            while !kept.is_empty() && rng.gen::<f64>() < pat.corruption {
                let drop_at = rng.gen_range(0..kept.len());
                kept.swap_remove(drop_at);
            }
            if kept.is_empty() {
                continue;
            }
            if txn.len() + kept.len() > budget && rng.gen::<bool>() {
                // Overflowing pattern discarded half the time.
                continue;
            }
            txn.extend_from_slice(&kept);
        }
        txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> QuestConfig {
        QuestConfig {
            n_transactions: 500,
            avg_txn_len: 10.0,
            avg_pattern_len: 4.0,
            n_patterns: 50,
            n_items: 100,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
        }
    }

    #[test]
    fn config_name() {
        assert_eq!(
            QuestConfig::standard(10.0, 4.0, 100_000).name(),
            "T10.I4.D100K"
        );
        assert_eq!(QuestConfig::standard(5.0, 2.0, 1234).name(), "T5.I2.D1234");
    }

    #[test]
    fn generates_requested_shape() {
        let g = QuestGenerator::new(small(), 7).unwrap();
        let db = g.generate(11);
        assert_eq!(db.len(), 500);
        assert_eq!(db.n_items(), 100);
        // Mean transaction length in the right ballpark (corruption and
        // dedup shrink it below the Poisson mean).
        let m = db.mean_len();
        assert!(m > 3.0 && m < 14.0, "mean len {m}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = QuestGenerator::new(small(), 3).unwrap().generate(5);
        let b = QuestGenerator::new(small(), 3).unwrap().generate(5);
        assert_eq!(a, b);
        let c = QuestGenerator::new(small(), 3).unwrap().generate(6);
        assert_ne!(a, c);
    }

    #[test]
    fn different_pattern_seed_changes_output() {
        let a = QuestGenerator::new(small(), 1).unwrap().generate(5);
        let b = QuestGenerator::new(small(), 2).unwrap().generate(5);
        assert_ne!(a, b);
    }

    #[test]
    fn produces_skewed_supports() {
        // The point of the generator: some itemsets are much more frequent
        // than the uniform baseline.
        let g = QuestGenerator::new(small(), 42).unwrap();
        let db = g.generate(43);
        let mut max_support = 0usize;
        for item in 0..100u32 {
            max_support = max_support.max(db.support_count(&[item]));
        }
        // Uniform items over 500 txns of ~8 items would each appear ~40
        // times; the weighted patterns concentrate far more.
        assert!(max_support > 80, "max item support {max_support}");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = small();
        c.n_items = 0;
        assert!(QuestGenerator::new(c, 0).is_err());
        let mut c = small();
        c.avg_txn_len = 0.0;
        assert!(QuestGenerator::new(c, 0).is_err());
        let mut c = small();
        c.correlation = 1.5;
        assert!(QuestGenerator::new(c, 0).is_err());
        let mut c = small();
        c.n_patterns = 0;
        assert!(QuestGenerator::new(c, 0).is_err());
    }

    #[test]
    fn transactions_respect_universe() {
        let g = QuestGenerator::new(small(), 9).unwrap();
        let db = g.generate(10);
        for t in db.iter() {
            assert!(t.iter().all(|&i| i < 100));
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted dedup");
        }
    }
}
