//! Seeded Gaussian-mixture generator for clustering experiments.

// Numeric kernels below co-index several parallel arrays; indexed loops
// are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]
use crate::distributions::normal;
use dm_dataset::{DataError, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One spherical Gaussian component.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Component mean.
    pub center: Vec<f64>,
    /// Per-dimension standard deviation (spherical).
    pub std: f64,
    /// Number of points drawn from this component.
    pub count: usize,
}

impl ClusterSpec {
    /// Creates a component spec.
    pub fn new(center: Vec<f64>, std: f64, count: usize) -> Self {
        Self { center, std, count }
    }
}

/// A mixture of spherical Gaussians plus optional uniform background
/// noise.
///
/// [`GaussianMixture::generate`] returns the data matrix and the
/// ground-truth labels: component indices `0..k`, with noise points
/// labelled `k` (one past the last component).
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    components: Vec<ClusterSpec>,
    noise_count: usize,
    /// Bounding box half-width for noise placement (noise is uniform in
    /// the hypercube `[-extent, extent]^d`).
    noise_extent: f64,
}

impl GaussianMixture {
    /// Builds a mixture from explicit component specs.
    pub fn new(components: Vec<ClusterSpec>) -> Result<Self, DataError> {
        if components.is_empty() {
            return Err(DataError::Empty("component list"));
        }
        let d = components[0].center.len();
        if d == 0 {
            return Err(DataError::InvalidParameter(
                "components must have at least one dimension".into(),
            ));
        }
        if components.iter().any(|c| c.center.len() != d) {
            return Err(DataError::InvalidParameter(
                "all components must share one dimensionality".into(),
            ));
        }
        if components.iter().any(|c| c.std < 0.0) {
            return Err(DataError::InvalidParameter(
                "standard deviations must be non-negative".into(),
            ));
        }
        Ok(Self {
            components,
            noise_count: 0,
            noise_extent: 10.0,
        })
    }

    /// A canonical benchmark mixture: `k` clusters of `count` points each
    /// in `d` dimensions, centers placed on a scaled simplex-like lattice
    /// so that neighbouring centers are `separation` standard deviations
    /// apart (σ = 1).
    pub fn well_separated(
        k: usize,
        d: usize,
        count: usize,
        separation: f64,
    ) -> Result<Self, DataError> {
        if k == 0 || d == 0 {
            return Err(DataError::InvalidParameter(
                "k and d must be positive".into(),
            ));
        }
        // Centers on a Z^d lattice walk: component i sits at position
        // derived from i in base `side`, scaled by `separation`.
        let side = (k as f64).powf(1.0 / d as f64).ceil().max(2.0) as usize;
        let mut components = Vec::with_capacity(k);
        for i in 0..k {
            let mut center = vec![0.0f64; d];
            let mut v = i;
            for c in center.iter_mut() {
                *c = (v % side) as f64 * separation;
                v /= side;
            }
            components.push(ClusterSpec::new(center, 1.0, count));
        }
        Self::new(components)
    }

    /// Adds `count` uniform background-noise points over
    /// `[-extent, extent]^d`, labelled `k`.
    pub fn with_noise(mut self, count: usize, extent: f64) -> Self {
        self.noise_count = count;
        self.noise_extent = extent;
        self
    }

    /// Number of Gaussian components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// The component specs (for stream generators that interleave
    /// draws instead of emitting per-component blocks).
    pub fn components(&self) -> &[ClusterSpec] {
        &self.components
    }

    /// Configured noise `(count, extent)`.
    pub fn noise_config(&self) -> (usize, f64) {
        (self.noise_count, self.noise_extent)
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.components[0].center.len()
    }

    /// Total number of points (components + noise).
    pub fn total_points(&self) -> usize {
        self.components.iter().map(|c| c.count).sum::<usize>() + self.noise_count
    }

    /// Generates `(data, labels)` deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> (Matrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = self.dims();
        let n = self.total_points();
        let mut data = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for (ci, comp) in self.components.iter().enumerate() {
            for _ in 0..comp.count {
                for &mu in &comp.center {
                    data.push(normal(&mut rng, mu, comp.std));
                }
                labels.push(ci as u32);
            }
        }
        let noise_label = self.components.len() as u32;
        for _ in 0..self.noise_count {
            for _ in 0..d {
                data.push(rng.gen_range(-self.noise_extent..=self.noise_extent));
            }
            labels.push(noise_label);
        }
        (
            Matrix::from_vec(data, n, d)
                .unwrap_or_else(|e| panic!("shape correct by construction: {e}")),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::matrix::euclidean;

    #[test]
    fn shapes_and_labels() {
        let gm = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.5, 30),
            ClusterSpec::new(vec![10.0, 10.0], 0.5, 20),
        ])
        .unwrap();
        let (m, labels) = gm.generate(1);
        assert_eq!((m.rows(), m.cols()), (50, 2));
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 30);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 20);
    }

    #[test]
    fn points_cluster_near_their_centers() {
        let gm = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.5, 100),
            ClusterSpec::new(vec![20.0, 0.0], 0.5, 100),
        ])
        .unwrap();
        let (m, labels) = gm.generate(2);
        for (i, &l) in labels.iter().enumerate() {
            let center = if l == 0 { [0.0, 0.0] } else { [20.0, 0.0] };
            assert!(euclidean(m.row(i), &center) < 5.0);
        }
    }

    #[test]
    fn noise_labelled_past_components() {
        let gm = GaussianMixture::new(vec![ClusterSpec::new(vec![0.0], 0.1, 10)])
            .unwrap()
            .with_noise(5, 3.0);
        let (m, labels) = gm.generate(3);
        assert_eq!(m.rows(), 15);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 5);
        for (i, &l) in labels.iter().enumerate() {
            if l == 1 {
                assert!(m.get(i, 0).abs() <= 3.0);
            }
        }
    }

    #[test]
    fn well_separated_builder() {
        let gm = GaussianMixture::well_separated(5, 2, 40, 8.0).unwrap();
        assert_eq!(gm.k(), 5);
        assert_eq!(gm.dims(), 2);
        assert_eq!(gm.total_points(), 200);
        let (m, _) = gm.generate(4);
        assert_eq!(m.rows(), 200);
        // Distinct centers: pairwise distances at least ~separation.
        let (_, labels) = gm.generate(4);
        let mut centers = vec![vec![0.0; 2]; 5];
        let mut counts = vec![0usize; 5];
        for (i, &l) in labels.iter().enumerate() {
            for j in 0..2 {
                centers[l as usize][j] += m.get(i, j);
            }
            counts[l as usize] += 1;
        }
        for (c, n) in centers.iter_mut().zip(&counts) {
            for x in c.iter_mut() {
                *x /= *n as f64;
            }
        }
        for a in 0..5 {
            for b in (a + 1)..5 {
                assert!(euclidean(&centers[a], &centers[b]) > 4.0);
            }
        }
    }

    #[test]
    fn validation() {
        assert!(GaussianMixture::new(vec![]).is_err());
        assert!(GaussianMixture::new(vec![ClusterSpec::new(vec![], 1.0, 5)]).is_err());
        assert!(GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0], 1.0, 5),
            ClusterSpec::new(vec![0.0, 1.0], 1.0, 5),
        ])
        .is_err());
        assert!(GaussianMixture::new(vec![ClusterSpec::new(vec![0.0], -1.0, 5)]).is_err());
        assert!(GaussianMixture::well_separated(0, 2, 5, 1.0).is_err());
    }

    #[test]
    fn deterministic() {
        let gm = GaussianMixture::well_separated(3, 2, 10, 6.0).unwrap();
        assert_eq!(gm.generate(7).0, gm.generate(7).0);
        assert_ne!(gm.generate(7).0, gm.generate(8).0);
    }
}
