//! The Agrawal–Imielinski–Swami synthetic classification benchmark.
//!
//! Reimplements the nine-attribute "people" schema and the ten
//! classification functions of Agrawal, Imielinski & Swami, *"Database
//! Mining: A Performance Perspective"* (IEEE TKDE 5(6), 1993) — the
//! standard decision-tree benchmark of the SIGMOD-'96 era (also used by
//! SLIQ and SPRINT).
//!
//! Attributes (sampling ranges per the paper):
//!
//! | attribute  | kind        | distribution                                   |
//! |------------|-------------|------------------------------------------------|
//! | salary     | numeric     | uniform 20,000 … 150,000                       |
//! | commission | numeric     | 0 if salary ≥ 75,000, else uniform 10k … 75k   |
//! | age        | numeric     | uniform 20 … 80                                |
//! | elevel     | categorical | uniform {0 … 4}                                |
//! | car        | categorical | uniform {1 … 20}                               |
//! | zipcode    | categorical | uniform {0 … 9}                                |
//! | hvalue     | numeric     | uniform 0.5·k·100,000 … 1.5·k·100,000, k = zip |
//! | hyears     | numeric     | uniform 1 … 30                                 |
//! | loan       | numeric     | uniform 0 … 500,000                            |
//!
//! Each function assigns label `A` (group A) or `B`.

use dm_dataset::{Column, DataError, Dataset, Dict, Labels};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One of the ten published classification functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgrawalFunction {
    /// Age-only disjunction — trivially learnable.
    F1,
    /// Age × salary rectangles.
    F2,
    /// Age × education level.
    F3,
    /// Age × education gating a salary band.
    F4,
    /// Age × salary gating a loan band.
    F5,
    /// Total income bands by age group.
    F6,
    /// Linear disposable-income predicate over salary/commission/loan.
    F7,
    /// Linear disposable income with education penalty.
    F8,
    /// Linear disposable income with education and loan terms.
    F9,
    /// Home-equity based disposable income — the hardest function.
    F10,
}

impl AgrawalFunction {
    /// All ten functions in order.
    pub const ALL: [AgrawalFunction; 10] = [
        AgrawalFunction::F1,
        AgrawalFunction::F2,
        AgrawalFunction::F3,
        AgrawalFunction::F4,
        AgrawalFunction::F5,
        AgrawalFunction::F6,
        AgrawalFunction::F7,
        AgrawalFunction::F8,
        AgrawalFunction::F9,
        AgrawalFunction::F10,
    ];

    /// Function number (1–10).
    pub fn number(self) -> usize {
        match self {
            AgrawalFunction::F1 => 1,
            AgrawalFunction::F2 => 2,
            AgrawalFunction::F3 => 3,
            AgrawalFunction::F4 => 4,
            AgrawalFunction::F5 => 5,
            AgrawalFunction::F6 => 6,
            AgrawalFunction::F7 => 7,
            AgrawalFunction::F8 => 8,
            AgrawalFunction::F9 => 9,
            AgrawalFunction::F10 => 10,
        }
    }

    /// Evaluates the predicate on one person; `true` means group A.
    #[allow(clippy::too_many_arguments)]
    fn is_group_a(
        self,
        salary: f64,
        commission: f64,
        age: f64,
        elevel: u32,
        hvalue: f64,
        hyears: f64,
        loan: f64,
    ) -> bool {
        let young = age < 40.0;
        let middle = (40.0..60.0).contains(&age);
        match self {
            AgrawalFunction::F1 => !(40.0..60.0).contains(&age),
            AgrawalFunction::F2 => {
                if young {
                    (50_000.0..=100_000.0).contains(&salary)
                } else if middle {
                    (75_000.0..=125_000.0).contains(&salary)
                } else {
                    (25_000.0..=75_000.0).contains(&salary)
                }
            }
            AgrawalFunction::F3 => {
                if young {
                    elevel <= 1
                } else if middle {
                    (1..=3).contains(&elevel)
                } else {
                    (2..=4).contains(&elevel)
                }
            }
            AgrawalFunction::F4 => {
                if young {
                    if elevel <= 1 {
                        (25_000.0..=75_000.0).contains(&salary)
                    } else {
                        (50_000.0..=100_000.0).contains(&salary)
                    }
                } else if middle {
                    if (1..=3).contains(&elevel) {
                        (50_000.0..=100_000.0).contains(&salary)
                    } else {
                        (75_000.0..=125_000.0).contains(&salary)
                    }
                } else if (2..=4).contains(&elevel) {
                    (50_000.0..=100_000.0).contains(&salary)
                } else {
                    (25_000.0..=75_000.0).contains(&salary)
                }
            }
            AgrawalFunction::F5 => {
                if young {
                    if (50_000.0..=100_000.0).contains(&salary) {
                        (100_000.0..=300_000.0).contains(&loan)
                    } else {
                        (200_000.0..=400_000.0).contains(&loan)
                    }
                } else if middle {
                    if (75_000.0..=125_000.0).contains(&salary) {
                        (200_000.0..=400_000.0).contains(&loan)
                    } else {
                        (300_000.0..=500_000.0).contains(&loan)
                    }
                } else if (25_000.0..=75_000.0).contains(&salary) {
                    (300_000.0..=500_000.0).contains(&loan)
                } else {
                    (100_000.0..=300_000.0).contains(&loan)
                }
            }
            AgrawalFunction::F6 => {
                let total = salary + commission;
                if young {
                    (25_000.0..=75_000.0).contains(&total)
                } else if middle {
                    (50_000.0..=125_000.0).contains(&total)
                } else {
                    (75_000.0..=125_000.0).contains(&total)
                }
            }
            AgrawalFunction::F7 => 0.67 * (salary + commission) - 0.2 * loan - 20_000.0 > 0.0,
            AgrawalFunction::F8 => {
                0.67 * (salary + commission) - 5_000.0 * elevel as f64 - 20_000.0 > 0.0
            }
            AgrawalFunction::F9 => {
                0.67 * (salary + commission) - 5_000.0 * elevel as f64 - 0.2 * loan - 10_000.0 > 0.0
            }
            AgrawalFunction::F10 => {
                let equity = if hyears < 20.0 {
                    0.0
                } else {
                    0.1 * hvalue * (hyears - 20.0)
                };
                0.67 * (salary + commission) - 5_000.0 * elevel as f64 + 0.2 * equity - 10_000.0
                    > 0.0
            }
        }
    }
}

/// Generates labelled "people" datasets for one [`AgrawalFunction`].
#[derive(Debug, Clone)]
pub struct AgrawalGenerator {
    function: AgrawalFunction,
    n_rows: usize,
}

impl AgrawalGenerator {
    /// Creates a generator for `function` emitting `n_rows` records.
    pub fn new(function: AgrawalFunction, n_rows: usize) -> Result<Self, DataError> {
        if n_rows == 0 {
            return Err(DataError::InvalidParameter("n_rows must be > 0".into()));
        }
        Ok(Self { function, n_rows })
    }

    /// The function being generated.
    pub fn function(&self) -> AgrawalFunction {
        self.function
    }

    /// Generates `(dataset, labels)` deterministically from `seed`.
    ///
    /// Labels are `"A"` (code 0) and `"B"` (code 1); the `Dict` always
    /// contains both classes even if one is absent from the sample.
    pub fn generate(&self, seed: u64) -> (Dataset, Labels) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.n_rows;
        let mut salary = Vec::with_capacity(n);
        let mut commission = Vec::with_capacity(n);
        let mut age = Vec::with_capacity(n);
        let mut elevel = Vec::with_capacity(n);
        let mut car = Vec::with_capacity(n);
        let mut zipcode = Vec::with_capacity(n);
        let mut hvalue = Vec::with_capacity(n);
        let mut hyears = Vec::with_capacity(n);
        let mut loan = Vec::with_capacity(n);
        let mut label_codes = Vec::with_capacity(n);

        for _ in 0..n {
            let s: f64 = rng.gen_range(20_000.0..=150_000.0);
            let c: f64 = if s >= 75_000.0 {
                0.0
            } else {
                rng.gen_range(10_000.0..=75_000.0)
            };
            let a: f64 = rng.gen_range(20.0..=80.0);
            let e: u32 = rng.gen_range(0..=4);
            let cr: u32 = rng.gen_range(1..=20);
            let z: u32 = rng.gen_range(0..=9);
            // Paper: hvalue depends on zipcode ("k" below), uniform in
            // [0.5 k 100000, 1.5 k 100000] with k derived from zipcode.
            let k = (z + 1) as f64;
            let hv: f64 = rng.gen_range(0.5 * k * 100_000.0..=1.5 * k * 100_000.0);
            let hy: f64 = rng.gen_range(1.0..=30.0);
            let l: f64 = rng.gen_range(0.0..=500_000.0);

            let group_a = self.function.is_group_a(s, c, a, e, hv, hy, l);
            salary.push(s);
            commission.push(c);
            age.push(a);
            elevel.push(e);
            car.push(cr);
            zipcode.push(z);
            hvalue.push(hv);
            hyears.push(hy);
            loan.push(l);
            label_codes.push(u32::from(!group_a)); // A=0, B=1
        }

        let elevel_dict = Dict::from_names((0..=4).map(|i| format!("level{i}")));
        let car_dict = Dict::from_names((1..=20).map(|i| format!("make{i}")));
        let zip_dict = Dict::from_names((0..=9).map(|i| format!("zip{i}")));

        let ds = Dataset::from_columns(
            format!("agrawal-f{}", self.function.number()),
            vec![
                ("salary".into(), Column::from_numeric(salary)),
                ("commission".into(), Column::from_numeric(commission)),
                ("age".into(), Column::from_numeric(age)),
                ("elevel".into(), Column::from_codes(elevel, elevel_dict)),
                (
                    "car".into(),
                    Column::from_codes(car.iter().map(|&c| c - 1).collect(), car_dict),
                ),
                ("zipcode".into(), Column::from_codes(zipcode, zip_dict)),
                ("hvalue".into(), Column::from_numeric(hvalue)),
                ("hyears".into(), Column::from_numeric(hyears)),
                ("loan".into(), Column::from_numeric(loan)),
            ],
        )
        .unwrap_or_else(|e| panic!("schema is consistent by construction: {e}"));

        let dict = Dict::from_names(["A", "B"]);
        let labels =
            Labels::from_codes(label_codes, dict).unwrap_or_else(|e| panic!("codes in range: {e}"));
        (ds, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::Value;

    #[test]
    fn schema_is_nine_attributes() {
        let g = AgrawalGenerator::new(AgrawalFunction::F1, 50).unwrap();
        let (ds, labels) = g.generate(1);
        assert_eq!(ds.n_cols(), 9);
        assert_eq!(ds.n_rows(), 50);
        assert_eq!(labels.len(), 50);
        assert_eq!(labels.n_classes(), 2);
        assert!(ds.attr(0).is_numeric()); // salary
        assert!(ds.attr(3).is_categorical()); // elevel
        assert!(ds.attr(5).is_categorical()); // zipcode
    }

    #[test]
    fn f1_label_matches_age_rule() {
        let g = AgrawalGenerator::new(AgrawalFunction::F1, 300).unwrap();
        let (ds, labels) = g.generate(2);
        let (age_idx, _) = ds.column_by_name("age").unwrap();
        for i in 0..ds.n_rows() {
            let age = match ds.value(i, age_idx) {
                Value::Num(a) => a,
                _ => panic!("age is numeric"),
            };
            let expect_a = !(40.0..60.0).contains(&age);
            assert_eq!(labels.get(i) == 0, expect_a, "row {i} age {age}");
        }
    }

    #[test]
    fn commission_zero_iff_high_salary() {
        let g = AgrawalGenerator::new(AgrawalFunction::F7, 300).unwrap();
        let (ds, _) = g.generate(3);
        for i in 0..ds.n_rows() {
            let s = ds.value(i, 0).as_num().unwrap();
            let c = ds.value(i, 1).as_num().unwrap();
            if s >= 75_000.0 {
                assert_eq!(c, 0.0);
            } else {
                assert!((10_000.0..=75_000.0).contains(&c));
            }
        }
    }

    #[test]
    fn every_function_produces_both_classes() {
        for f in AgrawalFunction::ALL {
            let g = AgrawalGenerator::new(f, 1000).unwrap();
            let (_, labels) = g.generate(11);
            let counts = labels.class_counts();
            assert!(
                counts[0] > 0 && counts[1] > 0,
                "function {f:?} produced counts {counts:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = AgrawalGenerator::new(AgrawalFunction::F5, 100).unwrap();
        assert_eq!(g.generate(7).0, g.generate(7).0);
        assert_ne!(g.generate(7).0, g.generate(8).0);
    }

    #[test]
    fn zero_rows_rejected() {
        assert!(AgrawalGenerator::new(AgrawalFunction::F1, 0).is_err());
    }

    #[test]
    fn labels_are_a_then_b() {
        let g = AgrawalGenerator::new(AgrawalFunction::F2, 10).unwrap();
        let (_, labels) = g.generate(1);
        assert_eq!(labels.dict().name(0), Some("A"));
        assert_eq!(labels.dict().name(1), Some("B"));
    }

    #[test]
    fn hvalue_scales_with_zipcode() {
        let g = AgrawalGenerator::new(AgrawalFunction::F10, 2000).unwrap();
        let (ds, _) = g.generate(5);
        let (zi, _) = ds.column_by_name("zipcode").unwrap();
        let (hi, _) = ds.column_by_name("hvalue").unwrap();
        for i in 0..ds.n_rows() {
            let z = ds.value(i, zi).as_cat().unwrap() as f64 + 1.0;
            let hv = ds.value(i, hi).as_num().unwrap();
            assert!(hv >= 0.5 * z * 100_000.0 - 1e-9);
            assert!(hv <= 1.5 * z * 100_000.0 + 1e-9);
        }
    }
}
