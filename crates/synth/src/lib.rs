//! # dm-synth
//!
//! Synthetic workload generators standing in for the proprietary data used
//! by the canonical mid-90s data-mining evaluations (see the repository's
//! `DESIGN.md` for the substitution table):
//!
//! * [`quest`] — the IBM Quest market-basket generator of Agrawal &
//!   Srikant (VLDB 1994), parameterized as `T<avg txn len>.I<avg pattern
//!   len>.D<n transactions>`. Drives the association-rule experiments.
//! * [`gaussian`] — seeded Gaussian mixtures with controllable
//!   separation, imbalance and background noise. Drives the clustering
//!   experiments.
//! * [`agrawal`] — the nine-attribute "people" schema and the ten
//!   classification functions F1–F10 of Agrawal, Imielinski & Swami
//!   (TKDE 1993). Drives the classification experiments.
//! * [`noise`] — label-noise injection for robustness studies.
//! * [`stream`] — unbounded seeded record streams (interleaved mixture
//!   points, Quest transactions) for the streaming engines.
//! * [`reservoir`] — Vitter's algorithm R: a fixed-capacity uniform
//!   sample over an unbounded stream.
//!
//! Every generator takes an explicit seed and is fully deterministic.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod agrawal;
pub mod distributions;
pub mod gaussian;
pub mod noise;
pub mod quest;
pub mod reservoir;
pub mod stream;

pub use agrawal::{AgrawalFunction, AgrawalGenerator};
pub use gaussian::{ClusterSpec, GaussianMixture};
pub use noise::flip_labels;
pub use quest::{QuestConfig, QuestGenerator};
pub use reservoir::Reservoir;
pub use stream::{PointStream, TxnStream};
