//! Unbounded seeded stream generators for `dm-stream`.
//!
//! The batch generators in this crate emit a whole dataset at once;
//! streaming engines instead want an endless, deterministic source they
//! can pull one record at a time. Both iterators here are infinite
//! (`next` never returns `None`) — take as many records as the
//! experiment needs, and the same seed always yields the same sequence,
//! so prefix-equivalence tests can replay a stream exactly.

use crate::distributions::{normal, weighted_index};
use crate::{GaussianMixture, QuestGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An infinite stream of labelled points drawn from a Gaussian mixture.
///
/// Unlike [`GaussianMixture::generate`], which emits per-component
/// blocks, the stream interleaves: each draw first picks a component
/// (weighted by its configured `count`, plus the noise weight), then
/// samples it — the arrival order a live feed would actually have.
#[derive(Debug, Clone)]
pub struct PointStream {
    mixture: GaussianMixture,
    weights: Vec<f64>,
    rng: StdRng,
}

impl PointStream {
    /// A stream over `mixture`'s components, seeded independently of
    /// any batch generation.
    pub fn new(mixture: GaussianMixture, seed: u64) -> Self {
        let mut weights: Vec<f64> = mixture
            .components()
            .iter()
            .map(|c| c.count as f64)
            .collect();
        let (noise_count, _) = mixture.noise_config();
        if noise_count > 0 {
            weights.push(noise_count as f64);
        }
        Self {
            mixture,
            weights,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Dimensionality of emitted points.
    pub fn dims(&self) -> usize {
        self.mixture.dims()
    }
}

impl Iterator for PointStream {
    /// `(point, ground-truth label)`; noise is labelled `k`.
    type Item = (Vec<f64>, u32);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = weighted_index(&mut self.rng, &self.weights);
        let comps = self.mixture.components();
        if idx < comps.len() {
            let comp = &comps[idx];
            let p = comp
                .center
                .iter()
                .map(|&mu| normal(&mut self.rng, mu, comp.std))
                .collect();
            Some((p, idx as u32))
        } else {
            // Noise component: uniform over the mixture's noise extent.
            let (_, extent) = self.mixture.noise_config();
            let d = self.mixture.dims();
            let p = (0..d)
                .map(|_| self.rng.gen_range(-extent..=extent))
                .collect();
            Some((p, comps.len() as u32))
        }
    }
}

/// An infinite stream of market-basket transactions drawn from a Quest
/// pattern table.
///
/// Each emitted transaction is canonical (sorted, deduplicated), ready
/// for the incremental frequent-itemset engine.
#[derive(Debug, Clone)]
pub struct TxnStream {
    generator: QuestGenerator,
    rng: StdRng,
}

impl TxnStream {
    /// A stream over `generator`'s pattern table, seeded independently
    /// of the pattern-table seed.
    pub fn new(generator: QuestGenerator, seed: u64) -> Self {
        Self {
            generator,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The item universe size.
    pub fn n_items(&self) -> u32 {
        self.generator.config().n_items
    }
}

impl Iterator for TxnStream {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut txn = self.generator.draw_transaction(&mut self.rng);
        txn.sort_unstable();
        txn.dedup();
        Some(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuestConfig;

    fn quest() -> QuestGenerator {
        QuestGenerator::new(
            QuestConfig {
                n_transactions: 1,
                avg_txn_len: 8.0,
                avg_pattern_len: 4.0,
                n_patterns: 30,
                n_items: 60,
                correlation: 0.25,
                corruption_mean: 0.5,
                corruption_sd: 0.1,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn point_stream_is_deterministic_and_labelled() {
        let gm = GaussianMixture::well_separated(3, 2, 100, 8.0).unwrap();
        let a: Vec<_> = PointStream::new(gm.clone(), 9).take(200).collect();
        let b: Vec<_> = PointStream::new(gm.clone(), 9).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<_> = PointStream::new(gm, 10).take(200).collect();
        assert_ne!(a, c);
        assert!(a.iter().all(|(p, l)| p.len() == 2 && *l < 3));
        // All three components show up in a couple hundred draws.
        for label in 0..3u32 {
            assert!(a.iter().any(|(_, l)| *l == label), "label {label} missing");
        }
    }

    #[test]
    fn txn_stream_is_deterministic_and_canonical() {
        let a: Vec<_> = TxnStream::new(quest(), 3).take(300).collect();
        let b: Vec<_> = TxnStream::new(quest(), 3).take(300).collect();
        assert_eq!(a, b);
        for t in &a {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            assert!(t.iter().all(|&i| i < 60), "inside the universe");
        }
        assert!(a.iter().any(|t| !t.is_empty()));
    }

    #[test]
    fn txn_stream_matches_batch_distribution() {
        // The stream and the batch generator share draw_transaction, so
        // the same (pattern seed, data seed) yields the same raw rows.
        let g = quest();
        let batch = g.generate(5);
        let streamed: Vec<_> = TxnStream::new(g, 5).take(1).collect();
        assert_eq!(batch.transaction(0), streamed[0].as_slice());
    }
}
