//! Label-noise injection for robustness experiments.

use dm_dataset::{DataError, Labels};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a copy of `labels` where each label is independently replaced,
/// with probability `rate`, by a *different* class chosen uniformly.
///
/// This is the classification-noise model of Quinlan's noise studies: a
/// flipped label never stays the same, so `rate` is exactly the expected
/// fraction of corrupted rows. Requires at least two classes when
/// `rate > 0`.
pub fn flip_labels(labels: &Labels, rate: f64, seed: u64) -> Result<Labels, DataError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(DataError::InvalidParameter(format!(
            "noise rate {rate} not in [0, 1]"
        )));
    }
    let k = labels.n_classes() as u32;
    if rate > 0.0 && k < 2 {
        return Err(DataError::InvalidParameter(
            "label flipping needs at least two classes".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let codes = labels
        .codes()
        .iter()
        .map(|&c| {
            if rate > 0.0 && rng.gen::<f64>() < rate {
                // Pick uniformly among the other k-1 classes.
                let mut alt = rng.gen_range(0..k - 1);
                if alt >= c {
                    alt += 1;
                }
                alt
            } else {
                c
            }
        })
        .collect();
    Labels::from_codes(codes, labels.dict().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::Dict;

    fn labels(n: usize) -> Labels {
        let dict = Dict::from_names(["a", "b", "c"]);
        Labels::from_codes((0..n as u32).map(|i| i % 3).collect(), dict).unwrap()
    }

    #[test]
    fn zero_rate_is_identity() {
        let l = labels(30);
        let flipped = flip_labels(&l, 0.0, 1).unwrap();
        assert_eq!(l.codes(), flipped.codes());
    }

    #[test]
    fn full_rate_changes_every_label() {
        let l = labels(100);
        let flipped = flip_labels(&l, 1.0, 2).unwrap();
        for (a, b) in l.codes().iter().zip(flipped.codes()) {
            assert_ne!(a, b);
            assert!(*b < 3);
        }
    }

    #[test]
    fn rate_approximates_fraction_flipped() {
        let l = labels(5000);
        let flipped = flip_labels(&l, 0.2, 3).unwrap();
        let changed = l
            .codes()
            .iter()
            .zip(flipped.codes())
            .filter(|(a, b)| a != b)
            .count();
        let frac = changed as f64 / 5000.0;
        assert!((frac - 0.2).abs() < 0.03, "flipped fraction {frac}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let l = labels(10);
        assert!(flip_labels(&l, -0.1, 0).is_err());
        assert!(flip_labels(&l, 1.1, 0).is_err());
        let single = Labels::from_strs(["only", "only"]);
        assert!(flip_labels(&single, 0.5, 0).is_err());
        assert!(flip_labels(&single, 0.0, 0).is_ok());
    }

    #[test]
    fn deterministic() {
        let l = labels(200);
        assert_eq!(
            flip_labels(&l, 0.3, 9).unwrap().codes(),
            flip_labels(&l, 0.3, 9).unwrap().codes()
        );
        assert_ne!(
            flip_labels(&l, 0.3, 9).unwrap().codes(),
            flip_labels(&l, 0.3, 10).unwrap().codes()
        );
    }
}
