//! Metric-registry coverage: every governed algorithm must emit the
//! metric names its documentation (DESIGN.md, "Metric name registry")
//! promises. A rename, a dropped emission site, or a new algorithm that
//! forgets to wire the recorder fails here — this file is the executable
//! half of the registry table.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::par::Parallelism;
use dm_core::prelude::*;
use std::sync::Arc;

/// Runs `f` with a fresh recorder-carrying guard and returns the
/// snapshot of everything it emitted.
fn record<F: FnOnce(&Guard)>(f: F) -> Snapshot {
    let rec = Arc::new(InMemoryRecorder::new());
    let guard = Guard::unlimited().with_recorder(rec.clone());
    f(&guard);
    rec.snapshot()
}

fn assert_counters(snap: &Snapshot, names: &[&str]) {
    for name in names {
        assert!(
            snap.counter(name).is_some(),
            "missing counter `{name}`; recorded: {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
    }
}

fn small_quest() -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 500), 101)
        .unwrap()
        .generate(202)
}

#[test]
fn every_assoc_miner_emits_per_pass_counters_and_spans() {
    let db = small_quest();
    let support = MinSupport::Fraction(0.02);
    let miners: Vec<(&str, Box<dyn ItemsetMiner>)> = vec![
        ("ais", Box::new(Ais::new(support))),
        ("setm", Box::new(Setm::new(support))),
        ("apriori", Box::new(Apriori::new(support))),
        ("apriori_tid", Box::new(AprioriTid::new(support))),
        ("apriori_hybrid", Box::new(AprioriHybrid::new(support))),
        ("brute", Box::new(BruteForce::new(support))),
    ];
    // Brute force enumerates the powerset, so it gets a 10-item toy db.
    let tiny = TransactionDb::new(vec![
        vec![0, 1, 2],
        vec![1, 2, 3],
        vec![0, 2, 4],
        vec![2, 3, 4],
    ]);
    for (algo, miner) in miners {
        let target = if algo == "brute" { &tiny } else { &db };
        let snap = record(|g| {
            miner.mine_governed(target, g).unwrap();
        });
        let expected = [
            format!("assoc.{algo}.pass1.candidates"),
            format!("assoc.{algo}.pass1.frequent"),
            format!("assoc.{algo}.pass1.pruned"),
            format!("assoc.{algo}.passes"),
        ];
        let expected: Vec<&str> = expected.iter().map(String::as_str).collect();
        assert_counters(&snap, &expected);
        assert!(
            snap.spans.contains_key(&format!("assoc.{algo}.pass1")),
            "{algo}: missing pass-1 span"
        );
    }
}

#[test]
fn fp_growth_emits_tree_counters_gauges_and_spans() {
    let db = small_quest();
    let snap = record(|g| {
        FpGrowth::new(MinSupport::Fraction(0.02))
            .mine_governed(&db, g)
            .unwrap();
    });
    assert_counters(
        &snap,
        &[
            "assoc.fp.pass1.candidates",
            "assoc.fp.pass1.frequent",
            "assoc.fp.pass1.pruned",
            "assoc.fp.passes",
            "assoc.fp.tree_nodes",
            "assoc.fp.cond_trees",
            "assoc.fp.cond_nodes",
            "assoc.fp.single_path_shortcuts",
        ],
    );
    // Zero candidates on every pass — the algorithm's defining claim.
    let passes = snap.counter("assoc.fp.passes").unwrap();
    for k in 1..=passes {
        assert_eq!(
            snap.counter(&format!("assoc.fp.pass{k}.candidates")),
            Some(0),
            "FP-Growth pass {k} generated candidates"
        );
    }
    for span in ["assoc.fp.scan", "assoc.fp.build", "assoc.fp.mine"] {
        assert!(snap.spans.contains_key(span), "missing span `{span}`");
    }
    assert!(snap
        .gauge("assoc.mem.fptree_bytes")
        .is_some_and(|v| v > 0.0));
    assert!(snap
        .gauge("assoc.fp.tree_mem_bytes")
        .is_some_and(|v| v > 0.0));
    assert!(snap.gauge("assoc.mem.db_bytes").is_some_and(|v| v > 0.0));
}

#[test]
fn eclat_emits_vertical_counters_gauges_and_spans() {
    let db = small_quest();
    let snap = record(|g| {
        Eclat::new(MinSupport::Fraction(0.02))
            .mine_governed(&db, g)
            .unwrap();
    });
    assert_counters(
        &snap,
        &[
            "assoc.eclat.pass1.candidates",
            "assoc.eclat.pass1.frequent",
            "assoc.eclat.pass1.pruned",
            "assoc.eclat.passes",
            "assoc.eclat.intersections",
        ],
    );
    for span in ["assoc.eclat.build", "assoc.eclat.mine"] {
        assert!(snap.spans.contains_key(span), "missing span `{span}`");
    }
    assert!(snap
        .gauge("assoc.mem.vertical_bytes")
        .is_some_and(|v| v > 0.0));
    assert!(snap
        .gauge("assoc.eclat.max_depth")
        .is_some_and(|v| v >= 1.0));
}

#[test]
fn auto_front_door_reports_its_resolution() {
    let db = small_quest();
    let snap = record(|g| {
        mine_governed(&db, MinSupport::Fraction(0.02), Method::Auto, g).unwrap();
    });
    let resolved: Vec<&str> = snap
        .events
        .iter()
        .filter(|e| e.name == "assoc.auto.resolved")
        .map(|e| e.detail.as_str())
        .collect();
    // small_quest is below the Auto size floor, so Apriori is chosen —
    // and the decision must be observable.
    assert_eq!(resolved, ["apriori"]);
    // A concrete method stays silent: nothing was "resolved".
    let snap = record(|g| {
        mine_governed(&db, MinSupport::Fraction(0.02), Method::Eclat, g).unwrap();
    });
    assert!(snap.events.iter().all(|e| e.name != "assoc.auto.resolved"));
}

#[test]
fn apriori_emits_hashtree_visits_and_hybrid_reports_switch() {
    let db = small_quest();
    // Low enough support to reach pass 3, where counting goes through
    // the hash tree.
    let snap = record(|g| {
        Apriori::new(MinSupport::Fraction(0.01))
            .mine_governed(&db, g)
            .unwrap();
    });
    let visits: u64 = snap
        .counters_with_prefix("assoc.apriori.pass")
        .into_iter()
        .filter(|(k, _)| k.ends_with("hashtree_visits"))
        .map(|(_, v)| v)
        .sum();
    assert!(visits > 0, "no hash-tree visits recorded");

    let snap = record(|g| {
        AprioriHybrid::new(MinSupport::Fraction(0.01))
            .with_tid_budget(usize::MAX)
            .mine_governed(&db, g)
            .unwrap();
    });
    let switched = snap.gauge("assoc.apriori_hybrid.switched_at_pass");
    assert!(
        switched.is_some_and(|p| p >= 2.0),
        "hybrid with an unbounded tid budget must switch and say when (got {switched:?})"
    );
}

#[test]
fn apriori_all_emits_sequence_metrics() {
    let db = SequenceGenerator::new(SequenceConfig::standard(120), 5)
        .unwrap()
        .generate(6);
    let snap = record(|g| {
        AprioriAll::new(0.05).mine_governed(&db, g).unwrap();
    });
    assert_counters(
        &snap,
        &["seq.apriori_all.litemsets", "seq.apriori_all.len1.frequent"],
    );
    assert!(snap.spans.contains_key("seq.apriori_all.mine"));
}

#[test]
fn every_clusterer_emits_its_documented_counters() {
    let (data, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
        .unwrap()
        .generate(9);
    let cases: Vec<(Box<dyn Clusterer>, Vec<&str>)> = vec![
        (
            Box::new(KMeans::new(3).with_seed(1)),
            vec!["cluster.kmeans.iterations", "cluster.kmeans.iter.churn"],
        ),
        (Box::new(Pam::new(3)), vec!["cluster.pam.iterations"]),
        (
            Box::new(Clara::new(3).with_seed(1)),
            vec!["cluster.clara.iterations"],
        ),
        (
            Box::new(Clarans::new(3).with_seed(1)),
            vec![
                "cluster.clarans.iterations",
                "cluster.clarans.neighbors_evaluated",
            ],
        ),
        (
            Box::new(Dbscan::new(1.5, 4)),
            vec![
                "cluster.dbscan.region_queries",
                "cluster.dbscan.clusters",
                "cluster.dbscan.noise_points",
            ],
        ),
        (
            Box::new(Birch::new(3).with_threshold(1.0).with_seed(1)),
            vec!["cluster.birch.leaf_entries", "cluster.birch.iterations"],
        ),
        (
            Box::new(Agglomerative::new(3)),
            vec!["cluster.agglomerative.merges"],
        ),
    ];
    for (clusterer, names) in cases {
        let snap = record(|g| {
            clusterer.fit_governed(&data, g).unwrap();
        });
        assert_counters(&snap, &names);
    }
    // Gauges ride along for the objective-value algorithms.
    let snap = record(|g| {
        KMeans::new(3).with_seed(1).fit_governed(&data, g).unwrap();
    });
    assert!(snap.gauge("cluster.kmeans.inertia").is_some());
    assert!(snap.gauge("cluster.kmeans.iter.inertia").is_some());
    let snap = record(|g| {
        Pam::new(3).fit_governed(&data, g).unwrap();
    });
    assert!(snap.gauge("cluster.pam.cost").is_some());
}

#[test]
fn tree_and_knn_emit_their_counters() {
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 300)
        .unwrap()
        .generate(11);
    let snap = record(|g| {
        DecisionTreeLearner::new()
            .fit_governed(&data, &labels, g)
            .unwrap();
    });
    assert_counters(
        &snap,
        &["tree.decision.nodes_expanded", "tree.decision.split_evals"],
    );

    let (train, train_labels) = GaussianMixture::well_separated(3, 2, 40, 9.0)
        .unwrap()
        .generate(3);
    let (test, _) = GaussianMixture::well_separated(3, 2, 30, 9.0)
        .unwrap()
        .generate(4);
    let model = Knn::new(3).fit(&train, &train_labels).unwrap();
    let snap = record(|g| {
        model.predict_governed(&test, g).unwrap();
    });
    assert_eq!(
        snap.counter("knn.predict.queries"),
        Some(test.rows() as u64)
    );
    assert!(snap.spans.contains_key("knn.predict"));
}

#[test]
fn parallel_kernels_emit_per_shard_telemetry() {
    let db = small_quest();
    let snap = record(|g| {
        // The recorder travels on the guard into the dm_par workers.
        Apriori::new(MinSupport::Fraction(0.02))
            .with_parallelism(Parallelism::Threads(2))
            .mine_governed(&db, g)
            .unwrap();
    });
    let shards = snap.counters_with_prefix("par.shard");
    assert!(
        shards.iter().any(|(k, _)| k.ends_with(".items")),
        "no per-shard item counters recorded: {shards:?}"
    );
    assert!(
        shards.iter().any(|(k, _)| k.ends_with(".busy_ns")),
        "no per-shard busy-time counters recorded: {shards:?}"
    );
}

#[test]
fn span_tree_nests_experiment_pass_and_shard() {
    let db = small_quest();
    let rec = Arc::new(InMemoryRecorder::new());
    let guard = Guard::unlimited().with_recorder(rec.clone());
    {
        let _exp = guard.obs().span("experiment.test");
        Apriori::new(MinSupport::Fraction(0.02))
            .with_parallelism(Parallelism::Threads(2))
            .mine_governed(&db, &guard)
            .unwrap();
    }
    let snap = rec.snapshot();
    let node = |name: &str| snap.tree.iter().find(|n| n.name == name);
    let exp = node("experiment.test").expect("experiment span reaches the tree");
    assert_eq!(exp.parent, 0, "experiment span is top-level");
    assert!(exp.dur_ns.is_some(), "experiment span closed");
    let pass1 = node("assoc.apriori.pass1").expect("pass span reaches the tree");
    assert_eq!(pass1.parent, exp.id, "pass nests under the experiment");
    // Worker shard spans carry the explicit parent handoff across
    // thread boundaries: they must nest under a mining pass.
    let shard = snap
        .tree
        .iter()
        .find(|n| n.name.starts_with("par.shard"))
        .expect("shard span reaches the tree");
    let shard_parent = snap
        .tree
        .iter()
        .find(|n| n.id == shard.parent)
        .expect("shard span has an in-tree parent");
    assert!(
        shard_parent.name.contains(".pass"),
        "shard should nest under a pass, got parent `{}`",
        shard_parent.name
    );
    // Durations also land in histograms (exact count/sum aggregates)...
    assert!(snap.histogram("assoc.apriori.pass1").is_some());
    // ...and per-shard work-item sizes feed a value histogram.
    let items = snap
        .histogram("par.shard.items")
        .expect("per-shard item-count histogram");
    assert!(items.count > 0 && items.sum > 0);
}

#[test]
fn memory_gauges_cover_the_paper_structures() {
    let db = small_quest();
    let snap = record(|g| {
        AprioriTid::new(MinSupport::Fraction(0.02))
            .mine_governed(&db, g)
            .unwrap();
    });
    assert!(snap.gauge("assoc.mem.db_bytes").is_some_and(|v| v > 0.0));
    assert!(snap.gauge("assoc.mem.ck_bytes").is_some_and(|v| v > 0.0));
    let snap = record(|g| {
        Apriori::new(MinSupport::Fraction(0.01))
            .mine_governed(&db, g)
            .unwrap();
    });
    assert!(
        snap.gauge("assoc.mem.hashtree_bytes")
            .is_some_and(|v| v > 0.0),
        "hash-tree footprint missing (support low enough for pass 3?)"
    );

    let (data, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
        .unwrap()
        .generate(9);
    let snap = record(|g| {
        Pam::new(3).fit_governed(&data, g).unwrap();
    });
    assert!(
        snap.gauge("cluster.pam.dist_cache_mem_bytes")
            .is_some_and(|v| v > 0.0),
        "PAM distance-cache footprint missing"
    );
    let snap = record(|g| {
        Birch::new(3)
            .with_threshold(1.0)
            .with_seed(1)
            .fit_governed(&data, g)
            .unwrap();
    });
    assert!(
        snap.gauge("cluster.birch.cf_tree_mem_bytes")
            .is_some_and(|v| v > 0.0),
        "BIRCH CF-tree footprint missing"
    );
}

/// The naming convention every ledger key inherits (DESIGN.md, "Metric
/// naming"): dot-separated lowercase segments, `<subsystem>` first from
/// the closed set below, at least one more segment after it. Run
/// ledgers diff and gate on these names across commits, so a rename is
/// a baseline-breaking event — this test is the executable convention.
fn assert_well_named(kind: &str, name: &str) {
    const SUBSYSTEMS: [&str; 11] = [
        "assoc",
        "seq",
        "cluster",
        "tree",
        "knn",
        "par",
        "guard",
        "experiment",
        "stream",
        "watch",
        "trace",
    ];
    let ok_chars = name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
    assert!(ok_chars, "{kind} `{name}`: only [a-z0-9_.] allowed");
    let segments: Vec<&str> = name.split('.').collect();
    assert!(
        segments.len() >= 2 && segments.iter().all(|s| !s.is_empty()),
        "{kind} `{name}`: need >= 2 non-empty dot segments"
    );
    assert!(
        SUBSYSTEMS.contains(&segments[0]),
        "{kind} `{name}`: unknown subsystem `{}` (registry: {SUBSYSTEMS:?})",
        segments[0]
    );
}

#[test]
fn every_emitted_metric_name_follows_the_convention() {
    let db = small_quest();
    let (tabular, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 200)
        .unwrap()
        .generate(11);
    let (points, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
        .unwrap()
        .generate(9);
    let snap = record(|g| {
        // One pass through each instrumented family, parallel shards on.
        Apriori::new(MinSupport::Fraction(0.02))
            .with_parallelism(Parallelism::Threads(2))
            .mine_governed(&db, g)
            .unwrap();
        AprioriTid::new(MinSupport::Fraction(0.02))
            .mine_governed(&db, g)
            .unwrap();
        FpGrowth::new(MinSupport::Fraction(0.02))
            .mine_governed(&db, g)
            .unwrap();
        Eclat::new(MinSupport::Fraction(0.02))
            .with_parallelism(Parallelism::Threads(2))
            .mine_governed(&db, g)
            .unwrap();
        Apriori::new(MinSupport::Fraction(0.02))
            .with_vertical_pass2(true)
            .mine_governed(&db, g)
            .unwrap();
        mine_governed(&db, MinSupport::Fraction(0.02), Method::Auto, g).unwrap();
        KMeans::new(3)
            .with_seed(1)
            .fit_governed(&points, g)
            .unwrap();
        DecisionTreeLearner::new()
            .fit_governed(&tabular, &labels, g)
            .unwrap();
        // The streaming engines: governed feeds emit the per-engine
        // insert/work counters, observe() the state gauges.
        let stream_points: Vec<Vec<f64>> =
            (0..points.rows()).map(|r| points.row(r).to_vec()).collect();
        let stream_txns: Vec<Vec<u32>> =
            (0..db.len()).map(|t| db.transaction(t).to_vec()).collect();
        let mut skm = StreamKMeans::new(3, 16).unwrap();
        assert!(skm.insert_governed(&stream_points, g).is_complete());
        skm.observe(&g.obs());
        let mut sbi = StreamBirch::new(3, 1.0, 6).unwrap();
        assert!(sbi.insert_governed(&stream_points, g).is_complete());
        sbi.observe(&g.obs());
        let n_items = 1 + stream_txns.iter().flatten().copied().max().unwrap_or(0);
        let mut sfr = StreamFrequent::new(n_items, 2, Some(50)).unwrap();
        assert!(sfr.insert_governed(&stream_txns, g).is_complete());
        sfr.observe(&g.obs());
    });
    assert!(snap.counter("stream.kmeans.inserts").is_some());
    assert!(snap.counter("stream.birch.inserts").is_some());
    assert!(snap.counter("stream.frequent.inserts").is_some());
    for name in snap.counters.keys() {
        assert_well_named("counter", name);
    }
    for name in snap.gauges.keys() {
        assert_well_named("gauge", name);
    }
    for name in snap.histograms.keys() {
        assert_well_named("histogram", name);
    }
    for node in &snap.tree {
        assert_well_named("span", &node.name);
    }
    for event in &snap.events {
        assert_well_named("event", &event.name);
    }
    // The pre-ledger stragglers stay gone: family memory high-waters
    // live under the reserved `mem` scope, tree counters under the
    // algorithm (`decision`), not the phase.
    for retired in [
        "assoc.db_mem_bytes",
        "assoc.ck_mem_bytes",
        "assoc.hashtree_mem_bytes",
        "tree.grow.nodes_expanded",
        "tree.grow.split_evals",
    ] {
        assert!(
            snap.counter(retired).is_none() && snap.gauge(retired).is_none(),
            "retired metric name `{retired}` re-emitted"
        );
    }
    assert!(snap.gauge("assoc.mem.db_bytes").is_some());
    assert!(snap.counter("tree.decision.nodes_expanded").is_some());
}

/// The watcher is a metric *producer* like any governed algorithm: one
/// alert lifecycle plus one drift detection must emit every
/// `watch.alert.*` / `watch.drift.*` name the DESIGN.md registry
/// documents, and nothing off-convention.
#[test]
fn watch_alert_and_drift_metrics_cover_the_registry() {
    use dm_core::obs::watch::{
        Clock, Condition, DetectorSpec, ManualClock, RuleSet, SloRule, Watcher,
    };
    use dm_core::obs::{Obs, Recorder};

    let rules = RuleSet::new(vec![
        SloRule::new(
            "queue-depth",
            Condition::GaugeAbove {
                metric: "stream.frequent.entries".into(),
                max: 5.0,
            },
        ),
        SloRule::new(
            "inertia-drift",
            Condition::Drift {
                metric: "stream.kmeans.inertia".into(),
                detector: DetectorSpec::PageHinkley {
                    delta: 0.05,
                    lambda: 5.0,
                },
                hold_ms: Some(200),
            },
        ),
    ]);
    let clock = Arc::new(ManualClock::new(0));
    let mut watcher = Watcher::new(rules, 10_000, clock.clone() as Arc<dyn Clock>);
    let source = InMemoryRecorder::new();
    let sink = Arc::new(InMemoryRecorder::new());
    let obs = Obs::new(&*sink);
    // A full lifecycle on the SLO rule (breach, fire, clear) and a mean
    // shift big enough to trip the drift detector.
    let mut series: Vec<(f64, f64)> = Vec::new();
    series.extend(vec![(9.0, 1.0); 3]);
    series.extend(vec![(1.0, 1.0); 27]);
    series.extend(vec![(1.0, 8.0); 20]);
    for (depth, inertia) in series {
        source.gauge("stream.frequent.entries", depth);
        source.gauge("stream.kmeans.inertia", inertia);
        watcher.tick(&source.snapshot(), &obs);
        clock.advance(100);
    }
    let snap = sink.snapshot();
    assert_counters(
        &snap,
        &[
            "watch.eval.ticks",
            "watch.alert.transitions",
            "watch.alert.queue_depth.pending",
            "watch.alert.queue_depth.firing",
            "watch.alert.queue_depth.resolved",
            "watch.alert.queue_depth.ok",
            "watch.alert.inertia_drift.firing",
            "watch.drift.detections",
            "watch.drift.inertia_drift.detections",
        ],
    );
    assert!(snap.gauge("watch.alert.firing").is_some());
    assert!(snap.gauge("watch.drift.inertia_drift.stat").is_some());
    assert!(
        snap.events
            .iter()
            .any(|e| e.name == "watch.alert.transition"),
        "transition events missing"
    );
    for name in snap.counters.keys() {
        assert_well_named("counter", name);
    }
    for name in snap.gauges.keys() {
        assert_well_named("gauge", name);
    }
    for event in &snap.events {
        assert_well_named("event", &event.name);
    }
}

/// The tail sampler is a metric *producer* like the watcher: one
/// retain, one sampled drop, one budget eviction and one pin must emit
/// every `trace.*` name the DESIGN.md registry documents, and nothing
/// off-convention. (The per-request `serve.request.queue_ns` /
/// `serve.request.exec_ns` split is enforced end-to-end by
/// `crates/serve/tests/trace_serve.rs`, which owns the serving path.)
#[test]
fn trace_store_metrics_cover_the_registry() {
    use dm_core::obs::trace::{
        RequestTrace, TraceConfig, TraceEvent, TraceEventKind, TraceId, TraceStore,
    };
    use dm_core::obs::Obs;

    let make = |seq: u64, anomalous: bool| {
        let mut events = vec![TraceEvent {
            at_ns: 0,
            kind: TraceEventKind::Submitted,
        }];
        if anomalous {
            events.push(TraceEvent {
                at_ns: 100,
                kind: TraceEventKind::Shed {
                    reason: "queue_full".into(),
                },
            });
        } else {
            events.push(TraceEvent {
                at_ns: 100,
                kind: TraceEventKind::Finished {
                    outcome: "complete".into(),
                },
            });
        }
        RequestTrace {
            id: TraceId::mint(7, seq),
            seq,
            endpoint: "predict".into(),
            events,
            queue_ns: 0,
            exec_ns: 100,
            total_ns: 100,
            pinned: Vec::new(),
        }
    };

    let rec = Arc::new(InMemoryRecorder::new());
    let obs = Obs::new(&*rec);
    // A budget two anomalous traces overflow, sampling off: the boring
    // trace is dropped, the third shed evicts the first, the pin walks
    // the survivors.
    let budget = 2 * make(1, true).approx_bytes() + make(1, true).approx_bytes() / 2;
    let store = TraceStore::new(
        TraceConfig {
            seed: 7,
            byte_budget: budget,
            sample_every: 0,
            slowest_k: 0,
            ..TraceConfig::default()
        },
        1,
    );
    assert!(!store.offer(0, make(1, false), &obs), "boring trace kept");
    for seq in 2..=4 {
        assert!(store.offer(0, make(seq, true), &obs), "shed {seq} dropped");
    }
    store.pin_recent("overload", &obs);

    let snap = rec.snapshot();
    assert_counters(
        &snap,
        &[
            "trace.retained",
            "trace.dropped",
            "trace.evicted",
            "trace.pinned",
        ],
    );
    assert!(snap.gauge("trace.bytes").is_some_and(|v| v > 0.0));
    for name in snap.counters.keys() {
        assert_well_named("counter", name);
    }
    for name in snap.gauges.keys() {
        assert_well_named("gauge", name);
    }
    let stats = store.stats();
    assert_eq!(stats.retained, 3);
    assert_eq!(stats.dropped, 1);
    // The third shed forces one eviction; the pin's own byte overhead
    // (rule-name strings) may force a second re-balance.
    assert!(
        (1..=2).contains(&stats.evicted),
        "evicted {}",
        stats.evicted
    );
    assert!(stats.bytes <= budget);
}

#[test]
fn guard_trip_is_observable() {
    let rec = Arc::new(InMemoryRecorder::new());
    let guard = Guard::new(Budget::unlimited().with_max_work(3)).with_recorder(rec.clone());
    let db = small_quest();
    let out = Apriori::new(MinSupport::Fraction(0.02))
        .mine_governed(&db, &guard)
        .unwrap();
    assert!(matches!(out.status, RunStatus::Truncated(_)));
    let snap = rec.snapshot();
    assert_eq!(
        snap.events
            .iter()
            .filter(|e| e.name == "guard.trip")
            .count(),
        1,
        "exactly one trip event"
    );
    assert!(snap.gauge("guard.work_admitted").is_some());
}
