//! Property test for the `dm_par` fold/merge algebra: for an
//! associative, boundary-insensitive merge (wrapping sum of per-item
//! hashes), `par_chunks_map_reduce` must equal the plain sequential
//! fold for *any* chunk size, thread count, and input.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::par::{par_chunks_map_reduce, par_range_map_reduce, Chunking, Parallelism};
use proptest::prelude::*;

fn hash(x: u64) -> u64 {
    // SplitMix64 finalizer: a cheap, well-mixed per-item hash.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #[test]
    fn chunked_hash_sum_equals_sequential_fold(
        items in proptest::collection::vec(0u64..u64::MAX, 0..400),
        chunk in 1usize..64,
        threads in 1usize..9,
    ) {
        let expected = items
            .iter()
            .fold(0u64, |acc, &x| acc.wrapping_add(hash(x)));
        for chunking in [Chunking::Fixed(chunk), Chunking::PerThread] {
            let got = par_chunks_map_reduce(
                Parallelism::Threads(threads),
                chunking,
                &items,
                || 0u64,
                |c| c.iter().fold(0u64, |acc, &x| acc.wrapping_add(hash(x))),
                |a, b| a.wrapping_add(b),
            );
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn range_and_slice_variants_agree(
        items in proptest::collection::vec(0u64..u64::MAX, 0..300),
        chunk in 1usize..48,
        threads in 1usize..7,
    ) {
        let by_slice = par_chunks_map_reduce(
            Parallelism::Threads(threads),
            Chunking::Fixed(chunk),
            &items,
            || 0u64,
            |c| c.iter().fold(0u64, |acc, &x| acc.wrapping_add(hash(x))),
            |a, b| a.wrapping_add(b),
        );
        let by_range = par_range_map_reduce(
            Parallelism::Threads(threads),
            Chunking::Fixed(chunk),
            items.len(),
            || 0u64,
            |r| r.fold(0u64, |acc, i| acc.wrapping_add(hash(items[i]))),
            |a, b| a.wrapping_add(b),
        );
        prop_assert_eq!(by_slice, by_range);
    }
}
