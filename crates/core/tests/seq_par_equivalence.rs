//! Sequential/parallel equivalence: for every wired kernel, mining or
//! fitting under `Threads(4)` must produce output identical — bit for
//! bit where floats are involved — to `Sequential`. This is the
//! contract `dm_par` promises (fixed chunk boundaries, in-order
//! merges); these tests enforce it end to end on seeded synthetic
//! workloads.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::par::Parallelism;
use dm_core::prelude::*;

fn settings() -> [Parallelism; 3] {
    [
        Parallelism::Threads(1),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ]
}

#[test]
fn apriori_counts_match_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_500), 9)
        .unwrap()
        .generate(41);
    let reference = Apriori::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    for par in settings() {
        let got = Apriori::new(MinSupport::Fraction(0.01))
            .with_parallelism(par)
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "{par:?}");
    }
}

#[test]
fn apriori_linear_counts_match_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(8.0, 3.0, 600), 7)
        .unwrap()
        .generate(42);
    let reference = Apriori::new(MinSupport::Fraction(0.02))
        .with_counting(CountingStrategy::Linear)
        .with_pair_array(false)
        .mine(&db)
        .unwrap();
    let got = Apriori::new(MinSupport::Fraction(0.02))
        .with_counting(CountingStrategy::Linear)
        .with_pair_array(false)
        .with_parallelism(Parallelism::Threads(4))
        .mine(&db)
        .unwrap();
    assert_eq!(got.itemsets, reference.itemsets);
}

#[test]
fn apriori_hybrid_matches_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_200), 8)
        .unwrap()
        .generate(43);
    for budget in [0usize, 20_000, 1_000_000] {
        let reference = AprioriHybrid::new(MinSupport::Fraction(0.01))
            .with_tid_budget(budget)
            .mine(&db)
            .unwrap();
        let got = AprioriHybrid::new(MinSupport::Fraction(0.01))
            .with_tid_budget(budget)
            .with_parallelism(Parallelism::Threads(4))
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "budget {budget}");
    }
}

#[test]
fn fp_growth_matches_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_500), 9)
        .unwrap()
        .generate(41);
    let reference = FpGrowth::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    for par in settings() {
        let got = FpGrowth::new(MinSupport::Fraction(0.01))
            .with_parallelism(par)
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "{par:?}");
    }
}

#[test]
fn eclat_matches_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_500), 9)
        .unwrap()
        .generate(41);
    let reference = Eclat::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    for par in settings() {
        let got = Eclat::new(MinSupport::Fraction(0.01))
            .with_parallelism(par)
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "{par:?}");
    }
}

#[test]
fn vertical_pass2_apriori_matches_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_200), 9)
        .unwrap()
        .generate(41);
    let reference = Apriori::new(MinSupport::Fraction(0.01))
        .with_vertical_pass2(true)
        .mine(&db)
        .unwrap();
    for par in settings() {
        let got = Apriori::new(MinSupport::Fraction(0.01))
            .with_vertical_pass2(true)
            .with_parallelism(par)
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "{par:?}");
    }
}

#[test]
fn kmeans_model_is_bit_identical() {
    let (data, _) = GaussianMixture::new(vec![
        ClusterSpec::new(vec![0.0, 0.0, 0.0], 1.0, 700),
        ClusterSpec::new(vec![6.0, 1.0, -3.0], 1.2, 900),
        ClusterSpec::new(vec![-4.0, 5.0, 2.0], 0.8, 800),
    ])
    .unwrap()
    .generate(17);
    for init in [Init::KMeansPlusPlus, Init::Random] {
        let reference = KMeans::new(3)
            .with_init(init)
            .with_seed(5)
            .fit_model(&data)
            .unwrap();
        for par in settings() {
            let got = KMeans::new(3)
                .with_init(init)
                .with_seed(5)
                .with_parallelism(par)
                .fit_model(&data)
                .unwrap();
            assert_eq!(got.assignments, reference.assignments, "{init:?} {par:?}");
            assert_eq!(got.iterations, reference.iterations, "{init:?} {par:?}");
            assert_eq!(
                got.inertia.to_bits(),
                reference.inertia.to_bits(),
                "{init:?} {par:?}: {} vs {}",
                got.inertia,
                reference.inertia
            );
            for c in 0..3 {
                assert_eq!(
                    got.centroids.row(c),
                    reference.centroids.row(c),
                    "{init:?} {par:?} centroid {c}"
                );
            }
        }
    }
}

#[test]
fn stream_kmeans_flushes_are_bit_identical() {
    // The mini-batch streaming engine shares the same determinism
    // contract as batch k-means: fixed chunk boundaries in the flush
    // assignment pass, merged in order, so the evolving centroids are
    // bit-identical under every thread policy — mid-stream and at the
    // end, pending buffer and decayed weights included.
    let points: Vec<Vec<f64>> = {
        let mixture = GaussianMixture::well_separated(3, 2, 200, 8.0).unwrap();
        PointStream::new(mixture, 11)
            .take(600)
            .map(|(p, _)| p)
            .collect()
    };
    let mut reference = StreamKMeans::new(3, 32).unwrap().with_decay(0.7).unwrap();
    for p in &points {
        reference.insert(p);
    }
    for par in settings() {
        let mut got = StreamKMeans::new(3, 32)
            .unwrap()
            .with_decay(0.7)
            .unwrap()
            .with_parallelism(par);
        let mut mid = None;
        for (i, p) in points.iter().enumerate() {
            got.insert(p);
            if i == points.len() / 2 {
                mid = Some(got.snapshot());
            }
        }
        let snap = got.snapshot();
        assert_eq!(snap, reference.snapshot(), "{par:?}");
        for (a, b) in snap.centroids.iter().zip(reference.centroids()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{par:?}: centroid bits");
            }
        }
        // The mid-stream state must agree across runs too, not just the
        // final fixpoint: re-derive it sequentially.
        let mut seq_mid = StreamKMeans::new(3, 32).unwrap().with_decay(0.7).unwrap();
        for p in &points[..=points.len() / 2] {
            seq_mid.insert(p);
        }
        assert_eq!(mid.unwrap(), seq_mid.snapshot(), "{par:?}: mid-stream");
    }
}

#[test]
fn decision_tree_is_identical() {
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F7, 1_500)
        .unwrap()
        .generate(23);
    for criterion in [
        SplitCriterion::GainRatio,
        SplitCriterion::InfoGain,
        SplitCriterion::Gini,
    ] {
        let reference = DecisionTreeLearner::new()
            .with_criterion(criterion)
            .fit(&data, &labels)
            .unwrap();
        for par in settings() {
            let got = DecisionTreeLearner::new()
                .with_criterion(criterion)
                .with_parallelism(par)
                .fit(&data, &labels)
                .unwrap();
            assert_eq!(got, reference, "{criterion:?} {par:?}");
        }
    }
}

#[test]
fn cancelled_apriori_upholds_invariants_in_parallel() {
    // A cancelled governed run must stop in both execution modes and the
    // surviving partial result must obey the same subset/closure
    // contract as the sequential path — parallelism must not smuggle in
    // partially counted candidates.
    let db = QuestGenerator::new(QuestConfig::standard(8.0, 3.0, 600), 7)
        .unwrap()
        .generate(44);
    let full = Apriori::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    for par in settings() {
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(Budget::unlimited(), token);
        let out = Apriori::new(MinSupport::Fraction(0.01))
            .with_parallelism(par)
            .mine_governed(&db, &guard)
            .unwrap();
        assert_eq!(
            out.status,
            RunStatus::Truncated(TruncationReason::Cancelled),
            "{par:?}"
        );
        assert!(out.result.itemsets.verify_downward_closure(), "{par:?}");
        for (itemset, count) in out.result.itemsets.iter() {
            assert_eq!(
                full.itemsets.support_count(itemset),
                Some(count),
                "{par:?}: {itemset:?}"
            );
        }
    }
}

#[test]
fn cancelled_mid_run_parallel_apriori_stays_a_valid_prefix() {
    let db = QuestGenerator::new(QuestConfig::standard(8.0, 3.0, 600), 7)
        .unwrap()
        .generate(45);
    let full = Apriori::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    let token = CancelToken::new();
    let guard = Guard::with_token(Budget::unlimited(), token.clone());
    let out = std::thread::scope(|scope| {
        let canceller = scope.spawn(move || token.cancel());
        let out = Apriori::new(MinSupport::Fraction(0.01))
            .with_parallelism(Parallelism::Threads(4))
            .mine_governed(&db, &guard)
            .unwrap();
        canceller.join().unwrap();
        out
    });
    // The cancel races the mine; either way the result must be valid.
    assert!(out.result.itemsets.verify_downward_closure());
    for (itemset, count) in out.result.itemsets.iter() {
        assert_eq!(full.itemsets.support_count(itemset), Some(count));
    }
    match out.status {
        RunStatus::Complete => assert_eq!(out.result.itemsets, full.itemsets),
        RunStatus::Truncated(reason) => assert_eq!(reason, TruncationReason::Cancelled),
    }
}

#[test]
fn cancelled_kmeans_parallel_matches_sequential_partial_state() {
    // With the same budget, the governed k-means must truncate at the
    // same iteration and produce bit-identical partial models in every
    // execution mode.
    let (data, _) = GaussianMixture::well_separated(4, 3, 300, 6.0)
        .unwrap()
        .generate(19);
    for max_iters in [0u64, 1, 3] {
        let seq_guard = Guard::new(Budget::unlimited().with_max_iterations(max_iters));
        let reference = KMeans::new(4)
            .with_seed(2)
            .fit_model_governed(&data, &seq_guard)
            .unwrap();
        for par in settings() {
            let par_guard = Guard::new(Budget::unlimited().with_max_iterations(max_iters));
            let got = KMeans::new(4)
                .with_seed(2)
                .with_parallelism(par)
                .fit_model_governed(&data, &par_guard)
                .unwrap();
            assert_eq!(got.status, reference.status, "{par:?} iters {max_iters}");
            assert_eq!(
                got.result.assignments, reference.result.assignments,
                "{par:?} iters {max_iters}"
            );
            assert_eq!(
                got.result.inertia.to_bits(),
                reference.result.inertia.to_bits(),
                "{par:?} iters {max_iters}"
            );
        }
    }
}

#[test]
fn recording_never_changes_results() {
    // Attaching a recorder is pure observation: the governed run with a
    // live InMemoryRecorder must produce output bit-identical to the
    // unrecorded run, sequentially and under threads.
    use std::sync::Arc;

    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_000), 9)
        .unwrap()
        .generate(41);
    let reference = Apriori::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    for par in settings() {
        let rec = Arc::new(InMemoryRecorder::new());
        let guard = Guard::unlimited().with_recorder(rec.clone());
        let got = Apriori::new(MinSupport::Fraction(0.01))
            .with_parallelism(par)
            .mine_governed(&db, &guard)
            .unwrap();
        assert_eq!(got.result.itemsets, reference.itemsets, "{par:?}");
        assert!(!rec.snapshot().is_empty(), "{par:?}: recorder saw nothing");
    }

    let (data, _) = GaussianMixture::well_separated(4, 3, 250, 7.0)
        .unwrap()
        .generate(19);
    let reference = KMeans::new(4).with_seed(2).fit_model(&data).unwrap();
    for par in settings() {
        let rec = Arc::new(InMemoryRecorder::new());
        let guard = Guard::unlimited().with_recorder(rec.clone());
        let got = KMeans::new(4)
            .with_seed(2)
            .with_parallelism(par)
            .fit_model_governed(&data, &guard)
            .unwrap()
            .result;
        assert_eq!(got.assignments, reference.assignments, "{par:?}");
        assert_eq!(
            got.inertia.to_bits(),
            reference.inertia.to_bits(),
            "{par:?}: inertia must be bit-identical under recording"
        );
        assert_eq!(got.iterations, reference.iterations, "{par:?}");
    }

    let (train, labels) = AgrawalGenerator::new(AgrawalFunction::F7, 800)
        .unwrap()
        .generate(23);
    let reference = DecisionTreeLearner::new().fit(&train, &labels).unwrap();
    let rec = Arc::new(InMemoryRecorder::new());
    let guard = Guard::unlimited().with_recorder(rec.clone());
    let got = DecisionTreeLearner::new()
        .fit_governed(&train, &labels, &guard)
        .unwrap()
        .result;
    assert_eq!(got, reference, "recorded tree must be identical");
    assert!(rec
        .snapshot()
        .counter("tree.decision.nodes_expanded")
        .is_some());
}

#[test]
fn knn_batch_predictions_match_sequential() {
    let (train, labels) = GaussianMixture::well_separated(4, 3, 120, 8.0)
        .unwrap()
        .generate(3);
    let (test, _) = GaussianMixture::well_separated(4, 3, 200, 8.0)
        .unwrap()
        .generate(4);
    for search in [Search::KdTree, Search::Brute] {
        let reference = Knn::new(5)
            .with_search(search)
            .fit(&train, &labels)
            .unwrap()
            .predict(&test)
            .unwrap();
        for par in settings() {
            let got = Knn::new(5)
                .with_search(search)
                .with_parallelism(par)
                .fit(&train, &labels)
                .unwrap()
                .predict(&test)
                .unwrap();
            assert_eq!(got, reference, "{search:?} {par:?}");
        }
    }
}
