//! Sequential/parallel equivalence: for every wired kernel, mining or
//! fitting under `Threads(4)` must produce output identical — bit for
//! bit where floats are involved — to `Sequential`. This is the
//! contract `dm_par` promises (fixed chunk boundaries, in-order
//! merges); these tests enforce it end to end on seeded synthetic
//! workloads.

use dm_core::par::Parallelism;
use dm_core::prelude::*;

fn settings() -> [Parallelism; 3] {
    [
        Parallelism::Threads(1),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ]
}

#[test]
fn apriori_counts_match_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_500), 9)
        .unwrap()
        .generate(41);
    let reference = Apriori::new(MinSupport::Fraction(0.01)).mine(&db).unwrap();
    for par in settings() {
        let got = Apriori::new(MinSupport::Fraction(0.01))
            .with_parallelism(par)
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "{par:?}");
    }
}

#[test]
fn apriori_linear_counts_match_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(8.0, 3.0, 600), 7)
        .unwrap()
        .generate(42);
    let reference = Apriori::new(MinSupport::Fraction(0.02))
        .with_counting(CountingStrategy::Linear)
        .with_pair_array(false)
        .mine(&db)
        .unwrap();
    let got = Apriori::new(MinSupport::Fraction(0.02))
        .with_counting(CountingStrategy::Linear)
        .with_pair_array(false)
        .with_parallelism(Parallelism::Threads(4))
        .mine(&db)
        .unwrap();
    assert_eq!(got.itemsets, reference.itemsets);
}

#[test]
fn apriori_hybrid_matches_sequential() {
    let db = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 1_200), 8)
        .unwrap()
        .generate(43);
    for budget in [0usize, 20_000, 1_000_000] {
        let reference = AprioriHybrid::new(MinSupport::Fraction(0.01))
            .with_tid_budget(budget)
            .mine(&db)
            .unwrap();
        let got = AprioriHybrid::new(MinSupport::Fraction(0.01))
            .with_tid_budget(budget)
            .with_parallelism(Parallelism::Threads(4))
            .mine(&db)
            .unwrap();
        assert_eq!(got.itemsets, reference.itemsets, "budget {budget}");
    }
}

#[test]
fn kmeans_model_is_bit_identical() {
    let (data, _) = GaussianMixture::new(vec![
        ClusterSpec::new(vec![0.0, 0.0, 0.0], 1.0, 700),
        ClusterSpec::new(vec![6.0, 1.0, -3.0], 1.2, 900),
        ClusterSpec::new(vec![-4.0, 5.0, 2.0], 0.8, 800),
    ])
    .unwrap()
    .generate(17);
    for init in [Init::KMeansPlusPlus, Init::Random] {
        let reference = KMeans::new(3)
            .with_init(init)
            .with_seed(5)
            .fit_model(&data)
            .unwrap();
        for par in settings() {
            let got = KMeans::new(3)
                .with_init(init)
                .with_seed(5)
                .with_parallelism(par)
                .fit_model(&data)
                .unwrap();
            assert_eq!(got.assignments, reference.assignments, "{init:?} {par:?}");
            assert_eq!(got.iterations, reference.iterations, "{init:?} {par:?}");
            assert_eq!(
                got.inertia.to_bits(),
                reference.inertia.to_bits(),
                "{init:?} {par:?}: {} vs {}",
                got.inertia,
                reference.inertia
            );
            for c in 0..3 {
                assert_eq!(
                    got.centroids.row(c),
                    reference.centroids.row(c),
                    "{init:?} {par:?} centroid {c}"
                );
            }
        }
    }
}

#[test]
fn decision_tree_is_identical() {
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F7, 1_500)
        .unwrap()
        .generate(23);
    for criterion in [
        SplitCriterion::GainRatio,
        SplitCriterion::InfoGain,
        SplitCriterion::Gini,
    ] {
        let reference = DecisionTreeLearner::new()
            .with_criterion(criterion)
            .fit(&data, &labels)
            .unwrap();
        for par in settings() {
            let got = DecisionTreeLearner::new()
                .with_criterion(criterion)
                .with_parallelism(par)
                .fit(&data, &labels)
                .unwrap();
            assert_eq!(got, reference, "{criterion:?} {par:?}");
        }
    }
}

#[test]
fn knn_batch_predictions_match_sequential() {
    let (train, labels) = GaussianMixture::well_separated(4, 3, 120, 8.0)
        .unwrap()
        .generate(3);
    let (test, _) = GaussianMixture::well_separated(4, 3, 200, 8.0)
        .unwrap()
        .generate(4);
    for search in [Search::KdTree, Search::Brute] {
        let reference = Knn::new(5)
            .with_search(search)
            .fit(&train, &labels)
            .unwrap()
            .predict(&test)
            .unwrap();
        for par in settings() {
            let got = Knn::new(5)
                .with_search(search)
                .with_parallelism(par)
                .fit(&train, &labels)
                .unwrap()
                .predict(&test)
                .unwrap();
            assert_eq!(got, reference, "{search:?} {par:?}");
        }
    }
}
