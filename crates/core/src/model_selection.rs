//! Model selection: cross-validation and train/test evaluation over any
//! [`Classifier`].

use crate::classify::Classifier;
use dm_dataset::{DataError, Dataset, Labels, StratifiedKFold};
use dm_eval::ConfusionMatrix;
use std::time::{Duration, Instant};

/// The outcome of a cross-validation (or train/test) run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Classifier name.
    pub name: String,
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
    /// Mean of the fold accuracies.
    pub mean_accuracy: f64,
    /// Population standard deviation of the fold accuracies.
    pub std_accuracy: f64,
    /// Confusion matrix accumulated over all test folds.
    pub confusion: ConfusionMatrix,
    /// Total time spent fitting.
    pub fit_time: Duration,
    /// Total time spent predicting.
    pub predict_time: Duration,
}

impl CvResult {
    fn from_folds(
        name: String,
        fold_accuracies: Vec<f64>,
        confusion: ConfusionMatrix,
        fit_time: Duration,
        predict_time: Duration,
    ) -> Self {
        let n = fold_accuracies.len().max(1) as f64;
        let mean = fold_accuracies.iter().sum::<f64>() / n;
        let var = fold_accuracies
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / n;
        Self {
            name,
            fold_accuracies,
            mean_accuracy: mean,
            std_accuracy: var.sqrt(),
            confusion,
            fit_time,
            predict_time,
        }
    }
}

/// Stratified k-fold cross-validation of `classifier` on
/// (`data`, `labels`).
///
/// Folds are stratified by class and shuffled with `seed`, so results
/// are deterministic for a given `(classifier, data, k, seed)`.
pub fn cross_validate(
    classifier: &dyn Classifier,
    data: &Dataset,
    labels: &Labels,
    k: usize,
    seed: u64,
) -> Result<CvResult, DataError> {
    if labels.len() != data.n_rows() {
        return Err(DataError::LabelLengthMismatch {
            labels: labels.len(),
            rows: data.n_rows(),
        });
    }
    let folds = StratifiedKFold::new(k)?
        .shuffled(seed)
        .split(labels.codes())?;
    let n_classes = labels.n_classes();
    let mut confusion = ConfusionMatrix::from_labels(n_classes, &[], &[])?;
    let mut fold_accuracies = Vec::with_capacity(k);
    let mut fit_time = Duration::ZERO;
    let mut predict_time = Duration::ZERO;
    for (train_idx, test_idx) in &folds {
        let train = data.select_rows(train_idx);
        let train_labels = labels.select(train_idx);
        let test = data.select_rows(test_idx);
        let test_labels = labels.select(test_idx);

        let t0 = Instant::now();
        let model = classifier.fit(&train, &train_labels)?;
        fit_time += t0.elapsed();

        let t0 = Instant::now();
        let pred = model.predict(&test);
        predict_time += t0.elapsed();

        let fold_cm = ConfusionMatrix::from_labels(n_classes, test_labels.codes(), &pred)?;
        fold_accuracies.push(fold_cm.accuracy());
        confusion.merge(&fold_cm)?;
    }
    Ok(CvResult::from_folds(
        classifier.name(),
        fold_accuracies,
        confusion,
        fit_time,
        predict_time,
    ))
}

/// Trains on one dataset and evaluates on another (a single "fold").
pub fn train_test_evaluate(
    classifier: &dyn Classifier,
    train: &Dataset,
    train_labels: &Labels,
    test: &Dataset,
    test_labels: &Labels,
) -> Result<CvResult, DataError> {
    let n_classes = train_labels.n_classes().max(test_labels.n_classes());
    let t0 = Instant::now();
    let model = classifier.fit(train, train_labels)?;
    let fit_time = t0.elapsed();
    let t0 = Instant::now();
    let pred = model.predict(test);
    let predict_time = t0.elapsed();
    let cm = ConfusionMatrix::from_labels(n_classes, test_labels.codes(), &pred)?;
    let acc = cm.accuracy();
    Ok(CvResult::from_folds(
        classifier.name(),
        vec![acc],
        cm,
        fit_time,
        predict_time,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{BayesClassifier, OneRClassifier, TreeClassifier};
    use dm_synth::{AgrawalFunction, AgrawalGenerator};

    #[test]
    fn cross_validation_scores_a_learnable_function() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 500)
            .unwrap()
            .generate(1);
        let r = cross_validate(&TreeClassifier::default(), &data, &labels, 5, 0).unwrap();
        assert_eq!(r.fold_accuracies.len(), 5);
        assert!(r.mean_accuracy > 0.9, "accuracy {}", r.mean_accuracy);
        assert!(r.std_accuracy < 0.1);
        assert_eq!(r.confusion.total(), 500);
        assert_eq!(r.name, "decision-tree");
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 300)
            .unwrap()
            .generate(2);
        let a = cross_validate(&BayesClassifier::default(), &data, &labels, 4, 9).unwrap();
        let b = cross_validate(&BayesClassifier::default(), &data, &labels, 4, 9).unwrap();
        assert_eq!(a.fold_accuracies, b.fold_accuracies);
    }

    #[test]
    fn train_test_path() {
        let (train, train_l) = AgrawalGenerator::new(AgrawalFunction::F1, 400)
            .unwrap()
            .generate(3);
        let (test, test_l) = AgrawalGenerator::new(AgrawalFunction::F1, 200)
            .unwrap()
            .generate(4);
        let r = train_test_evaluate(&OneRClassifier::default(), &train, &train_l, &test, &test_l)
            .unwrap();
        assert_eq!(r.confusion.total(), 200);
        assert!(r.mean_accuracy > 0.8, "accuracy {}", r.mean_accuracy);
    }

    #[test]
    fn label_mismatch_rejected() {
        let (data, _) = AgrawalGenerator::new(AgrawalFunction::F1, 50)
            .unwrap()
            .generate(5);
        let labels = dm_dataset::Labels::from_strs(["a", "b"]);
        assert!(cross_validate(&TreeClassifier::default(), &data, &labels, 3, 0).is_err());
    }
}
