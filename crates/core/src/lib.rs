//! # dm-core
//!
//! The unified facade of the `datamining` workspace: one crate to depend
//! on for the full toolkit.
//!
//! * Re-exports every subsystem crate under a stable module name
//!   ([`dataset`], [`synth`], [`eval`], [`assoc`], [`cluster`], [`tree`],
//!   [`bayes`], [`knn`]).
//! * Defines the polymorphic [`Classifier`]/[`ClassifierModel`] traits
//!   with adapters for every classifier in the workspace, so model
//!   selection code can treat them uniformly.
//! * Provides the [`model_selection`] module: k-fold cross-validation
//!   and train/test evaluation over any [`Classifier`].
//!
//! ```
//! use dm_core::prelude::*;
//!
//! let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 400)
//!     .unwrap()
//!     .generate(7);
//! let result = cross_validate(
//!     &TreeClassifier::default(),
//!     &data,
//!     &labels,
//!     5,
//!     0, // shuffle seed
//! )
//! .unwrap();
//! assert!(result.mean_accuracy > 0.9);
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod classify;
pub mod model_selection;

/// Association-rule mining (re-export of `dm-assoc`).
pub use dm_assoc as assoc;
/// Naive Bayes (re-export of `dm-bayes`).
pub use dm_bayes as bayes;
/// Clustering (re-export of `dm-cluster`).
pub use dm_cluster as cluster;
/// The data substrate (re-export of `dm-dataset`).
pub use dm_dataset as dataset;
/// Evaluation metrics (re-export of `dm-eval`).
pub use dm_eval as eval;
/// Resource governance (re-export of `dm-guard`): budgets, cooperative
/// cancellation, and graceful truncation for every long-running miner.
pub use dm_guard as guard;
/// k-nearest neighbours (re-export of `dm-knn`).
pub use dm_knn as knn;
/// Observability (re-export of `dm-obs`): metric recorders, timed spans
/// and JSON snapshots, attached to runs via `Guard::with_recorder`.
pub use dm_obs as obs;
/// Data-parallel execution (re-export of `dm-par`): chunked map-reduce
/// with a determinism guarantee; see its module docs for the model.
pub use dm_par as par;
/// Sequential-pattern mining (re-export of `dm-seq`).
pub use dm_seq as seq;
/// Streaming & incremental mining (re-export of `dm-stream`): the
/// insert/query lifecycle over unbounded record streams.
pub use dm_stream as stream;
/// Synthetic workload generators (re-export of `dm-synth`).
pub use dm_synth as synth;
/// Decision trees (re-export of `dm-tree`).
pub use dm_tree as tree;

pub use classify::{
    BaggedClassifier, BayesClassifier, Classifier, ClassifierModel, KnnClassifier, OneRClassifier,
    TreeClassifier,
};
pub use model_selection::{cross_validate, train_test_evaluate, CvResult};

/// Convenience prelude pulling in the common types of every subsystem.
pub mod prelude {
    pub use crate::classify::{
        BaggedClassifier, BayesClassifier, Classifier, ClassifierModel, KnnClassifier,
        OneRClassifier, TreeClassifier,
    };
    pub use crate::model_selection::{cross_validate, train_test_evaluate, CvResult};
    pub use dm_assoc::{
        mine, mine_governed, Ais, Apriori, AprioriHybrid, AprioriTid, BruteForce, CountingStrategy,
        Eclat, FpGrowth, FrequentItemsets, ItemsetMiner, Method, MinSupport, MiningResult, Rule,
        RuleGenerator, Setm,
    };
    pub use dm_bayes::NaiveBayes;
    pub use dm_cluster::{
        Agglomerative, Birch, Clara, Clarans, Clusterer, Clustering, Dbscan, Init, KMeans, Linkage,
        Pam, NOISE,
    };
    pub use dm_dataset::{
        Column, DataError, Dataset, Dict, KFold, Labels, Matrix, StratifiedKFold, TidSet,
        TransactionDb, Value, VerticalDb,
    };
    pub use dm_eval::{
        adjusted_rand_index, normalized_mutual_information, purity, silhouette, sse,
        ConfusionMatrix,
    };
    pub use dm_guard::{Budget, CancelToken, Guard, Outcome, RunStatus, TruncationReason};
    pub use dm_knn::{CondensedNn, Distance, Knn, Search, Weighting};
    pub use dm_obs::{
        export::{chrome_trace, folded_stacks, prometheus},
        HeapSize, Histogram, InMemoryRecorder, NoopRecorder, Obs, ProgressRecorder, Recorder,
        Snapshot, SpanId, StderrSink, TeeRecorder, SNAPSHOT_SCHEMA,
    };
    pub use dm_par::Parallelism;
    pub use dm_seq::{
        AprioriAll, SequenceConfig, SequenceDb, SequenceGenerator, SequentialPattern,
    };
    pub use dm_stream::{StreamBirch, StreamEngine, StreamFrequent, StreamKMeans};
    pub use dm_synth::{
        flip_labels, AgrawalFunction, AgrawalGenerator, ClusterSpec, GaussianMixture, PointStream,
        QuestConfig, QuestGenerator, Reservoir, TxnStream,
    };
    pub use dm_tree::{BaggedTrees, DecisionTreeLearner, OneR, Pruning, SplitCriterion};
}
