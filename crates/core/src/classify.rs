//! Polymorphic classifier traits and adapters.
//!
//! Every classifier crate exposes its own concrete fit/predict API; this
//! module wraps them behind one object-safe pair of traits so model
//! selection, experiments and examples can iterate over heterogeneous
//! classifier lists.

use dm_dataset::dataset::MatrixEncoding;
use dm_dataset::{DataError, Dataset, FittedScaler, Labels, Scaler, StandardScaler};

/// A classification algorithm (configuration + training procedure).
pub trait Classifier {
    /// Human-readable name for experiment tables.
    fn name(&self) -> String;

    /// Trains on `data`/`labels`, returning a prediction model.
    fn fit(&self, data: &Dataset, labels: &Labels) -> Result<Box<dyn ClassifierModel>, DataError>;
}

/// A trained classification model.
pub trait ClassifierModel {
    /// Predicts a class code for every row of `data`.
    fn predict(&self, data: &Dataset) -> Vec<u32>;
}

// ---------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------

/// [`Classifier`] adapter for [`dm_tree::DecisionTreeLearner`].
#[derive(Debug, Clone, Default)]
pub struct TreeClassifier {
    /// The wrapped learner configuration.
    pub learner: dm_tree::DecisionTreeLearner,
}

impl TreeClassifier {
    /// Wraps a configured learner.
    pub fn new(learner: dm_tree::DecisionTreeLearner) -> Self {
        Self { learner }
    }
}

impl Classifier for TreeClassifier {
    fn name(&self) -> String {
        "decision-tree".into()
    }

    fn fit(&self, data: &Dataset, labels: &Labels) -> Result<Box<dyn ClassifierModel>, DataError> {
        Ok(Box::new(self.learner.fit(data, labels)?))
    }
}

impl ClassifierModel for dm_tree::DecisionTree {
    fn predict(&self, data: &Dataset) -> Vec<u32> {
        dm_tree::DecisionTree::predict(self, data)
    }
}

// ---------------------------------------------------------------------
// Bagged trees
// ---------------------------------------------------------------------

/// [`Classifier`] adapter for [`dm_tree::BaggedTrees`].
#[derive(Debug, Clone)]
pub struct BaggedClassifier {
    /// The wrapped ensemble configuration.
    pub learner: dm_tree::BaggedTrees,
}

impl Default for BaggedClassifier {
    fn default() -> Self {
        Self {
            learner: dm_tree::BaggedTrees::new(15),
        }
    }
}

impl BaggedClassifier {
    /// Wraps a configured bagger.
    pub fn new(learner: dm_tree::BaggedTrees) -> Self {
        Self { learner }
    }
}

impl Classifier for BaggedClassifier {
    fn name(&self) -> String {
        "bagged-trees".into()
    }

    fn fit(&self, data: &Dataset, labels: &Labels) -> Result<Box<dyn ClassifierModel>, DataError> {
        Ok(Box::new(self.learner.fit(data, labels)?))
    }
}

impl ClassifierModel for dm_tree::BaggedTreesModel {
    fn predict(&self, data: &Dataset) -> Vec<u32> {
        dm_tree::BaggedTreesModel::predict(self, data)
    }
}

// ---------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------

/// [`Classifier`] adapter for [`dm_bayes::NaiveBayes`].
#[derive(Debug, Clone, Default)]
pub struct BayesClassifier {
    /// The wrapped learner configuration.
    pub learner: dm_bayes::NaiveBayes,
}

impl BayesClassifier {
    /// Wraps a configured learner.
    pub fn new(learner: dm_bayes::NaiveBayes) -> Self {
        Self { learner }
    }
}

impl Classifier for BayesClassifier {
    fn name(&self) -> String {
        "naive-bayes".into()
    }

    fn fit(&self, data: &Dataset, labels: &Labels) -> Result<Box<dyn ClassifierModel>, DataError> {
        Ok(Box::new(self.learner.fit(data, labels)?))
    }
}

impl ClassifierModel for dm_bayes::NaiveBayesModel {
    fn predict(&self, data: &Dataset) -> Vec<u32> {
        dm_bayes::NaiveBayesModel::predict(self, data)
    }
}

// ---------------------------------------------------------------------
// 1R
// ---------------------------------------------------------------------

/// [`Classifier`] adapter for [`dm_tree::OneR`].
#[derive(Debug, Clone, Default)]
pub struct OneRClassifier {
    /// The wrapped learner configuration.
    pub learner: dm_tree::OneR,
}

impl OneRClassifier {
    /// Wraps a configured learner.
    pub fn new(learner: dm_tree::OneR) -> Self {
        Self { learner }
    }
}

impl Classifier for OneRClassifier {
    fn name(&self) -> String {
        "one-r".into()
    }

    fn fit(&self, data: &Dataset, labels: &Labels) -> Result<Box<dyn ClassifierModel>, DataError> {
        Ok(Box::new(self.learner.fit(data, labels)?))
    }
}

impl ClassifierModel for dm_tree::OneRModel {
    fn predict(&self, data: &Dataset) -> Vec<u32> {
        dm_tree::OneRModel::predict(self, data)
    }
}

// ---------------------------------------------------------------------
// k-NN (with the dataset → matrix bridge)
// ---------------------------------------------------------------------

/// [`Classifier`] adapter for [`dm_knn::Knn`].
///
/// k-NN consumes numeric matrices, so the adapter one-hot encodes
/// categorical columns and z-standardizes all features on the training
/// data (applying identical transforms at prediction) — the conventional
/// preprocessing for distance-based methods on mixed data.
///
/// The fitted model **panics** if prediction data one-hot encodes to a
/// different width than the training schema (e.g. dictionaries built
/// from a different source); keep the training `Dict`s when loading
/// held-out data.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    /// The wrapped configuration.
    pub config: dm_knn::Knn,
}

impl Default for KnnClassifier {
    fn default() -> Self {
        Self {
            config: dm_knn::Knn::new(5),
        }
    }
}

impl KnnClassifier {
    /// Wraps a configured k-NN.
    pub fn new(config: dm_knn::Knn) -> Self {
        Self { config }
    }
}

struct KnnBridgeModel {
    scaler: FittedScaler,
    model: dm_knn::KnnModel,
}

impl ClassifierModel for KnnBridgeModel {
    fn predict(&self, data: &Dataset) -> Vec<u32> {
        let m = data.to_matrix(MatrixEncoding::OneHot);
        let m = self
            .scaler
            .transform(&m)
            .unwrap_or_else(|e| panic!("schema mismatch between train and test data: {e}"));
        self.model
            .predict(&m)
            .unwrap_or_else(|e| panic!("dimensions validated by the scaler: {e}"))
    }
}

impl Classifier for KnnClassifier {
    fn name(&self) -> String {
        "knn".into()
    }

    fn fit(&self, data: &Dataset, labels: &Labels) -> Result<Box<dyn ClassifierModel>, DataError> {
        let m = data.to_matrix(MatrixEncoding::OneHot);
        let scaler = StandardScaler.fit(&m)?;
        let m = scaler.transform(&m)?;
        let model = self.config.fit(&m, labels.codes())?;
        Ok(Box::new(KnnBridgeModel { scaler, model }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{AgrawalFunction, AgrawalGenerator};

    fn all_classifiers() -> Vec<Box<dyn Classifier>> {
        vec![
            Box::new(TreeClassifier::default()),
            Box::new(BaggedClassifier::new(dm_tree::BaggedTrees::new(5))),
            Box::new(BayesClassifier::default()),
            Box::new(OneRClassifier::default()),
            Box::new(KnnClassifier::default()),
        ]
    }

    #[test]
    fn every_adapter_trains_and_predicts() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 300)
            .unwrap()
            .generate(5);
        for c in all_classifiers() {
            let model = c.fit(&data, &labels).unwrap();
            let pred = model.predict(&data);
            assert_eq!(pred.len(), 300, "{}", c.name());
            let acc = pred
                .iter()
                .zip(labels.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / 300.0;
            assert!(acc > 0.6, "{} accuracy {acc}", c.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = all_classifiers().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn knn_bridge_handles_mixed_schema_consistently() {
        // Train and predict on datasets with the same schema but
        // different content; one-hot width must line up.
        let (train, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 400)
            .unwrap()
            .generate(9);
        let (test, test_labels) = AgrawalGenerator::new(AgrawalFunction::F1, 200)
            .unwrap()
            .generate(10);
        let model = KnnClassifier::default().fit(&train, &labels).unwrap();
        let pred = model.predict(&test);
        let acc = pred
            .iter()
            .zip(test_labels.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 200.0;
        // k-NN is diluted by the seven irrelevant attributes (a classic
        // weakness the experiments surface); it must still beat chance
        // under a consistent train/test encoding.
        assert!(acc > 0.55, "accuracy {acc}");
    }
}
