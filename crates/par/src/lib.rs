//! # dm-par
//!
//! Dependency-free data parallelism for the workspace's hot kernels,
//! built entirely on [`std::thread::scope`] (re-exported by the facade
//! as `dm_core::par`).
//!
//! ## Execution model
//!
//! Work is expressed as *chunked map-reduce*: the input slice is cut
//! into chunks, each chunk is mapped to a partial accumulator, and the
//! partials are merged **in chunk order** (a left fold starting from
//! `identity()`). Threads claim contiguous blocks of chunks, so the
//! only effect of the thread count is *where* chunks execute — never
//! which chunks exist or the order their results merge in.
//!
//! ## Determinism guarantee
//!
//! Two complementary regimes, selected by [`Chunking`]:
//!
//! * [`Chunking::Fixed`] — chunk boundaries are a pure function of the
//!   input length (never of the thread count). Because the map is pure
//!   per chunk and the merge runs in chunk order on one thread, the
//!   result is **bit-identical for every [`Parallelism`] setting, for
//!   any merge function** — including non-associative floating-point
//!   accumulation. This is the regime the k-means kernels use.
//! * [`Chunking::PerThread`] — one chunk per effective thread (the
//!   classic *Count Distribution* partitioning from parallel Apriori).
//!   Chunk boundaries then depend on the thread count, so results are
//!   thread-count-invariant **iff the merge is exactly associative and
//!   insensitive to chunk boundaries** — true for the integer support
//!   counters of the frequent-itemset miners, where per-shard counts
//!   merge by integer summation. Cheaper than `Fixed` when the
//!   accumulator is large (one merge per thread instead of per chunk).
//!
//! Equivalence tests in `dm-core` assert `Threads(4)` output equals
//! `Sequential` output exactly for Apriori, k-means, decision trees,
//! and kNN; a property test in `dm-core` checks the fold/merge algebra
//! over random chunk sizes.
//!
//! ## Choosing a [`Parallelism`]
//!
//! * [`Parallelism::Sequential`] (the default everywhere) — no threads,
//!   no overhead; algorithms behave exactly as before this module
//!   existed.
//! * [`Parallelism::Threads`]`(n)` — exactly `n` worker threads;
//!   `Threads(1)` runs the same code path as `Sequential`.
//! * [`Parallelism::Auto`] — [`std::thread::available_parallelism`]
//!   threads; right for dedicated batch runs.
//!
//! Scoped threads borrow the inputs directly, so nothing is cloned or
//! `Arc`-wrapped; each call spawns and joins its threads (no pool),
//! which costs tens of microseconds — negligible for the database-scan
//! and assignment passes this layer targets, but worth skipping for
//! tiny inputs, which is why every kernel keeps a sequential guard for
//! small `n`.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use dm_guard::{Guard, TruncationReason};
use std::num::NonZeroUsize;

/// How many worker threads a parallel kernel may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`].
    Auto,
    /// Use exactly this many threads (`0` is treated as `1`).
    Threads(usize),
    /// Single-threaded: run everything on the calling thread.
    #[default]
    Sequential,
}

impl Parallelism {
    /// The concrete worker count this setting resolves to (`>= 1`).
    pub fn effective_threads(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Sequential => 1,
        }
    }
}

/// How the input slice is cut into chunks (see the module docs for the
/// determinism trade-off between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chunking {
    /// Chunks of exactly this size (last chunk may be short).
    /// Boundaries depend only on the input length, making results
    /// bit-identical across thread counts for *any* merge.
    Fixed(usize),
    /// One balanced chunk per effective thread (Count Distribution).
    /// Results are thread-count-invariant only for exactly associative
    /// merges (integer counters).
    PerThread,
}

/// Nanoseconds since `t0`, saturating at `u64::MAX`.
fn elapsed_ns(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// The chunk boundaries for `len` items: `(chunk_size, n_chunks)`.
fn layout(len: usize, chunking: Chunking, threads: usize) -> (usize, usize) {
    let chunk = match chunking {
        Chunking::Fixed(size) => size.max(1),
        Chunking::PerThread => len.div_ceil(threads.max(1)).max(1),
    };
    (chunk, len.div_ceil(chunk))
}

/// Chunked map-reduce over `items`.
///
/// Cuts `items` into chunks per `chunking`, maps every chunk with
/// `map`, and left-folds the partial results **in chunk order** with
/// `merge`, starting from `identity()`. With `Parallelism::Sequential`
/// (or one effective thread, or a single chunk) everything runs on the
/// calling thread through the *same* chunk structure, which is what
/// makes the parallel and sequential results comparable bit-for-bit
/// under [`Chunking::Fixed`].
///
/// Empty input returns `identity()` without calling `map`.
pub fn par_chunks_map_reduce<T, A>(
    par: Parallelism,
    chunking: Chunking,
    items: &[T],
    identity: impl Fn() -> A,
    map: impl Fn(&[T]) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> A
where
    T: Sync,
    A: Send,
{
    let len = items.len();
    if len == 0 {
        return identity();
    }
    let threads = par.effective_threads();
    let (chunk, n_chunks) = layout(len, chunking, threads);
    if threads == 1 || n_chunks == 1 {
        return items
            .chunks(chunk)
            .fold(identity(), |acc, c| merge(acc, map(c)));
    }

    // Each worker fills a contiguous block of per-chunk result slots, so
    // the slot vector can be handed out with `chunks_mut` — no locks.
    let mut slots: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
    let per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, block) in slots.chunks_mut(per_worker).enumerate() {
            let map = &map;
            s.spawn(move || {
                for (j, slot) in block.iter_mut().enumerate() {
                    let ci = w * per_worker + j;
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(len);
                    *slot = Some(map(&items[lo..hi]));
                }
            });
        }
    });
    // Every slot is Some: the worker loops above fill their whole block
    // unconditionally, so `flatten` drops nothing and keeps the fold
    // panic-free.
    debug_assert!(slots.iter().all(Option::is_some));
    slots.into_iter().flatten().fold(identity(), merge)
}

/// Chunked map-reduce over the index range `0..len`.
///
/// The range analogue of [`par_chunks_map_reduce`], for kernels whose
/// input is indexed rather than sliced (matrix rows, query ids): the
/// range is cut into sub-ranges per `chunking`, `map` receives each
/// sub-range, and partials merge **in range order** from `identity()`.
/// The same determinism regimes apply ([`Chunking::Fixed`] is
/// bit-identical across every [`Parallelism`] setting for any merge).
pub fn par_range_map_reduce<A>(
    par: Parallelism,
    chunking: Chunking,
    len: usize,
    identity: impl Fn() -> A,
    map: impl Fn(std::ops::Range<usize>) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> A
where
    A: Send,
{
    if len == 0 {
        return identity();
    }
    let threads = par.effective_threads();
    let (chunk, n_chunks) = layout(len, chunking, threads);
    if threads == 1 || n_chunks == 1 {
        return (0..n_chunks).fold(identity(), |acc, ci| {
            let lo = ci * chunk;
            merge(acc, map(lo..(lo + chunk).min(len)))
        });
    }
    let mut slots: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
    let per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, block) in slots.chunks_mut(per_worker).enumerate() {
            let map = &map;
            s.spawn(move || {
                for (j, slot) in block.iter_mut().enumerate() {
                    let ci = w * per_worker + j;
                    let lo = ci * chunk;
                    *slot = Some(map(lo..(lo + chunk).min(len)));
                }
            });
        }
    });
    // Every slot is Some: the worker loops above fill their whole block
    // unconditionally, so `flatten` drops nothing and keeps the fold
    // panic-free.
    debug_assert!(slots.iter().all(Option::is_some));
    slots.into_iter().flatten().fold(identity(), merge)
}

/// Governed chunked map-reduce: [`par_chunks_map_reduce`] under a
/// [`Guard`].
///
/// Every worker polls the guard before each chunk, so a cross-thread
/// cancel (or a deadline / armed fail point) stops all shards within one
/// chunk of work. If the guard trips at any point — including between the
/// last chunk and the final merge — the whole pass is abandoned and the
/// trip reason returned; partial per-chunk results are never merged, so a
/// caller either gets the exact ungoverned result of the pass or a clean
/// trip it can translate into its own partial result. With an unlimited,
/// untripped guard the result is bit-identical to the ungoverned
/// function's (same chunk structure, same in-order merge).
pub fn par_chunks_map_reduce_governed<T, A>(
    par: Parallelism,
    chunking: Chunking,
    items: &[T],
    guard: &Guard,
    identity: impl Fn() -> A,
    map: impl Fn(&[T]) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> Result<A, TruncationReason>
where
    T: Sync,
    A: Send,
{
    let len = items.len();
    guard.check()?;
    if len == 0 {
        return Ok(identity());
    }
    let threads = par.effective_threads();
    let (chunk, n_chunks) = layout(len, chunking, threads);
    // Per-shard telemetry (`par.shard<w>.{busy_ns,items}`) is collected
    // only when the guard carries a recorder, so the ungoverned/noop
    // path never reads the clock.
    let obs = guard.obs();
    let recorded = obs.enabled();
    if threads == 1 || n_chunks == 1 {
        let t0 = recorded.then(std::time::Instant::now);
        let _shard_span = obs.span("par.shard0");
        let mut acc = identity();
        for c in items.chunks(chunk) {
            guard.check()?;
            acc = merge(acc, map(c));
        }
        if let Some(t0) = t0 {
            obs.counter("par.shard0.items", len as u64);
            obs.counter("par.shard0.busy_ns", elapsed_ns(t0));
            obs.value("par.shard.items", len as u64);
        }
        return Ok(acc);
    }
    // Shard spans cannot inherit the caller's span through the worker
    // threads' (empty) span stacks — hand the parent over explicitly.
    let parent = obs.current_span();
    let mut slots: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
    let per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, block) in slots.chunks_mut(per_worker).enumerate() {
            let map = &map;
            s.spawn(move || {
                let t0 = recorded.then(std::time::Instant::now);
                let _shard_span = obs.span_child_fmt(format_args!("par.shard{w}"), parent);
                let mut items_done = 0u64;
                for (j, slot) in block.iter_mut().enumerate() {
                    if guard.should_stop() {
                        break;
                    }
                    let ci = w * per_worker + j;
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(len);
                    items_done += (hi - lo) as u64;
                    *slot = Some(map(&items[lo..hi]));
                }
                if let Some(t0) = t0 {
                    obs.counter_fmt(format_args!("par.shard{w}.items"), items_done);
                    obs.counter_fmt(format_args!("par.shard{w}.busy_ns"), elapsed_ns(t0));
                    obs.value("par.shard.items", items_done);
                }
            });
        }
    });
    // A final check catches trips that raced with the last chunks: if it
    // fails, some slots may be empty and the pass is void; if it
    // succeeds, no worker ever observed a trip and every slot is filled.
    guard.check()?;
    debug_assert!(slots.iter().all(Option::is_some));
    Ok(slots.into_iter().flatten().fold(identity(), merge))
}

/// Governed range map-reduce: [`par_range_map_reduce`] under a
/// [`Guard`], with the same per-chunk polling, all-or-nothing pass
/// semantics, and unlimited-guard bit-identity as
/// [`par_chunks_map_reduce_governed`].
pub fn par_range_map_reduce_governed<A>(
    par: Parallelism,
    chunking: Chunking,
    len: usize,
    guard: &Guard,
    identity: impl Fn() -> A,
    map: impl Fn(std::ops::Range<usize>) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> Result<A, TruncationReason>
where
    A: Send,
{
    guard.check()?;
    if len == 0 {
        return Ok(identity());
    }
    let threads = par.effective_threads();
    let (chunk, n_chunks) = layout(len, chunking, threads);
    let obs = guard.obs();
    let recorded = obs.enabled();
    if threads == 1 || n_chunks == 1 {
        let t0 = recorded.then(std::time::Instant::now);
        let _shard_span = obs.span("par.shard0");
        let mut acc = identity();
        for ci in 0..n_chunks {
            guard.check()?;
            let lo = ci * chunk;
            acc = merge(acc, map(lo..(lo + chunk).min(len)));
        }
        if let Some(t0) = t0 {
            obs.counter("par.shard0.items", len as u64);
            obs.counter("par.shard0.busy_ns", elapsed_ns(t0));
            obs.value("par.shard.items", len as u64);
        }
        return Ok(acc);
    }
    let parent = obs.current_span();
    let mut slots: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
    let per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, block) in slots.chunks_mut(per_worker).enumerate() {
            let map = &map;
            s.spawn(move || {
                let t0 = recorded.then(std::time::Instant::now);
                let _shard_span = obs.span_child_fmt(format_args!("par.shard{w}"), parent);
                let mut items_done = 0u64;
                for (j, slot) in block.iter_mut().enumerate() {
                    if guard.should_stop() {
                        break;
                    }
                    let ci = w * per_worker + j;
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(len);
                    items_done += (hi - lo) as u64;
                    *slot = Some(map(lo..hi));
                }
                if let Some(t0) = t0 {
                    obs.counter_fmt(format_args!("par.shard{w}.items"), items_done);
                    obs.counter_fmt(format_args!("par.shard{w}.busy_ns"), elapsed_ns(t0));
                    obs.value("par.shard.items", items_done);
                }
            });
        }
    });
    guard.check()?;
    debug_assert!(slots.iter().all(Option::is_some));
    Ok(slots.into_iter().flatten().fold(identity(), merge))
}

/// Parallel index-preserving map: returns `f(0, &items[0]), f(1, ..) ..`
/// in input order.
///
/// Every element is mapped independently, so the result is identical
/// for every [`Parallelism`] setting by construction.
pub fn par_map_indexed<T, U>(
    par: Parallelism,
    items: &[T],
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U>
where
    T: Sync,
    U: Send,
{
    let len = items.len();
    let threads = par.effective_threads();
    if threads == 1 || len < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let mut out: Vec<Option<U>> = (0..len).map(|_| None).collect();
    let per_worker = len.div_ceil(threads);
    std::thread::scope(|s| {
        for (w, block) in out.chunks_mut(per_worker).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, slot) in block.iter_mut().enumerate() {
                    let i = w * per_worker + j;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });
    debug_assert!(out.iter().all(Option::is_some));
    out.into_iter().flatten().collect()
}

/// Parallel in-place transform over disjoint mutable chunks: `f`
/// receives each chunk and the index of its first element.
///
/// Chunk boundaries follow `chunking` exactly as in
/// [`par_chunks_map_reduce`]; since every element belongs to one chunk
/// and `f` only sees disjoint `&mut` slices, the result is identical
/// for every [`Parallelism`] setting whenever `f` writes each element
/// as a pure function of its pre-call state.
pub fn par_chunks_for_each_mut<T>(
    par: Parallelism,
    chunking: Chunking,
    items: &mut [T],
    f: impl Fn(usize, &mut [T]) + Sync,
) where
    T: Send,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let threads = par.effective_threads();
    let (chunk, n_chunks) = layout(len, chunking, threads);
    if threads == 1 || n_chunks == 1 {
        for (ci, c) in items.chunks_mut(chunk).enumerate() {
            f(ci * chunk, c);
        }
        return;
    }
    // Hand each worker a contiguous run of chunks.
    let per_worker = n_chunks.div_ceil(threads);
    let elems_per_worker = per_worker * chunk;
    std::thread::scope(|s| {
        for (w, block) in items.chunks_mut(elems_per_worker).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, c) in block.chunks_mut(chunk).enumerate() {
                    f(w * elems_per_worker + j * chunk, c);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> [Parallelism; 5] {
        [
            Parallelism::Sequential,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Auto,
        ]
    }

    #[test]
    fn effective_threads_floors_at_one() {
        assert_eq!(Parallelism::Sequential.effective_threads(), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(), 1);
        assert_eq!(Parallelism::Threads(3).effective_threads(), 3);
        assert!(Parallelism::Auto.effective_threads() >= 1);
    }

    #[test]
    fn map_reduce_sums_match_sequential_fold() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: u64 = items.iter().sum();
        for par in settings() {
            for chunking in [Chunking::Fixed(1), Chunking::Fixed(97), Chunking::PerThread] {
                let got = par_chunks_map_reduce(
                    par,
                    chunking,
                    &items,
                    || 0u64,
                    |chunk| chunk.iter().sum::<u64>(),
                    |a, b| a + b,
                );
                assert_eq!(got, expected, "{par:?} {chunking:?}");
            }
        }
    }

    #[test]
    fn fixed_chunking_is_bit_identical_even_for_floats() {
        // A deliberately association-sensitive reduction: alternating
        // magnitudes so float rounding depends on grouping.
        let items: Vec<f64> = (0..5_000)
            .map(|i| if i % 2 == 0 { 1e16 } else { 1.0 })
            .collect();
        let reference = par_chunks_map_reduce(
            Parallelism::Sequential,
            Chunking::Fixed(61),
            &items,
            || 0.0f64,
            |chunk| chunk.iter().sum::<f64>(),
            |a, b| a + b,
        );
        for par in settings() {
            let got = par_chunks_map_reduce(
                par,
                Chunking::Fixed(61),
                &items,
                || 0.0f64,
                |chunk| chunk.iter().sum::<f64>(),
                |a, b| a + b,
            );
            assert_eq!(got.to_bits(), reference.to_bits(), "{par:?}");
        }
    }

    #[test]
    fn merge_runs_in_chunk_order() {
        // Concatenation is associative but not commutative: order of
        // merges is observable.
        let items: Vec<u32> = (0..1_000).collect();
        let expected: Vec<u32> = items.clone();
        for par in settings() {
            let got = par_chunks_map_reduce(
                par,
                Chunking::Fixed(37),
                &items,
                Vec::new,
                |chunk| chunk.to_vec(),
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert_eq!(got, expected, "{par:?}");
        }
    }

    #[test]
    fn empty_input_returns_identity() {
        let items: [u64; 0] = [];
        for par in settings() {
            let got = par_chunks_map_reduce(
                par,
                Chunking::PerThread,
                &items,
                || 41u64,
                |_| panic!("map must not run on empty input"),
                |_, _| panic!("merge must not run on empty input"),
            );
            assert_eq!(got, 41);
        }
    }

    #[test]
    fn range_map_reduce_matches_slice_version() {
        let items: Vec<u64> = (0..9_973).map(|i| i * 7 + 1).collect();
        let expected: u64 = items.iter().sum();
        for par in settings() {
            for chunking in [Chunking::Fixed(101), Chunking::PerThread] {
                let got = par_range_map_reduce(
                    par,
                    chunking,
                    items.len(),
                    || 0u64,
                    |range| range.map(|i| items[i]).sum::<u64>(),
                    |a, b| a + b,
                );
                assert_eq!(got, expected, "{par:?} {chunking:?}");
            }
        }
        // Order-sensitive merge: concatenated ranges must cover 0..len
        // in order for every setting.
        for par in settings() {
            let got = par_range_map_reduce(
                par,
                Chunking::Fixed(37),
                1_000,
                Vec::new,
                |range| range.collect::<Vec<usize>>(),
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert_eq!(got, (0..1_000).collect::<Vec<_>>(), "{par:?}");
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        let items: Vec<i64> = (0..997).map(|i| i * 3).collect();
        let expected: Vec<i64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x - i as i64)
            .collect();
        for par in settings() {
            let got = par_map_indexed(par, &items, |i, &x| x - i as i64);
            assert_eq!(got, expected, "{par:?}");
        }
    }

    #[test]
    fn for_each_mut_covers_every_element_once() {
        for par in settings() {
            for chunking in [Chunking::Fixed(13), Chunking::PerThread] {
                let mut items = vec![0u32; 1_001];
                par_chunks_for_each_mut(par, chunking, &mut items, |start, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x += (start + j) as u32 + 1;
                    }
                });
                let ok = items.iter().enumerate().all(|(i, &x)| x == i as u32 + 1);
                assert!(ok, "{par:?} {chunking:?}");
            }
        }
    }

    #[test]
    fn governed_unlimited_is_bit_identical_to_ungoverned() {
        let items: Vec<f64> = (0..5_000)
            .map(|i| if i % 2 == 0 { 1e16 } else { 1.0 })
            .collect();
        let reference = par_chunks_map_reduce(
            Parallelism::Sequential,
            Chunking::Fixed(61),
            &items,
            || 0.0f64,
            |chunk| chunk.iter().sum::<f64>(),
            |a, b| a + b,
        );
        for par in settings() {
            let guard = Guard::unlimited();
            let got = par_chunks_map_reduce_governed(
                par,
                Chunking::Fixed(61),
                &items,
                &guard,
                || 0.0f64,
                |chunk| chunk.iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "{par:?}");
            let got = par_range_map_reduce_governed(
                par,
                Chunking::Fixed(61),
                items.len(),
                &guard,
                || 0.0f64,
                |r| r.map(|i| items[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "{par:?} (range)");
        }
    }

    #[test]
    fn governed_pass_aborts_on_pre_cancelled_guard() {
        let items: Vec<u64> = (0..100).collect();
        for par in settings() {
            let guard = Guard::unlimited();
            guard.cancel_token().cancel();
            let got = par_chunks_map_reduce_governed(
                par,
                Chunking::Fixed(7),
                &items,
                &guard,
                || 0u64,
                |c| c.iter().sum(),
                |a, b| a + b,
            );
            assert_eq!(got, Err(dm_guard::TruncationReason::Cancelled), "{par:?}");
        }
    }

    #[test]
    fn governed_workers_observe_mid_run_cancel() {
        // Cancel from inside the map closure: later chunks must be
        // skipped without panicking, and the pass must report the trip.
        let items: Vec<u64> = (0..10_000).collect();
        for par in settings() {
            let guard = Guard::unlimited();
            let token = guard.cancel_token();
            let got = par_chunks_map_reduce_governed(
                par,
                Chunking::Fixed(64),
                &items,
                &guard,
                || 0u64,
                |c| {
                    if c[0] >= 1_024 {
                        token.cancel();
                    }
                    c.iter().sum()
                },
                |a, b| a + b,
            );
            assert_eq!(got, Err(dm_guard::TruncationReason::Cancelled), "{par:?}");
        }
    }

    #[test]
    fn threads_beyond_chunks_are_harmless() {
        let items: Vec<u64> = (0..10).collect();
        let got = par_chunks_map_reduce(
            Parallelism::Threads(64),
            Chunking::Fixed(3),
            &items,
            || 0u64,
            |c| c.iter().sum(),
            |a, b| a + b,
        );
        assert_eq!(got, 45);
        let mapped = par_map_indexed(Parallelism::Threads(64), &items, |_, &x| x * 2);
        assert_eq!(mapped, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }
}
