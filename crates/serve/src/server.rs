//! The request loop: admission, per-request guards, worker threads,
//! panic isolation, and instrumentation.
//!
//! Life of a request: [`Server::submit`] validates nothing heavier
//! than queue capacity (admission must stay O(1) under overload) and
//! either sheds with [`ServeError::Overloaded`] or enqueues a job
//! stamped with its submit time. A worker pops the job, *charges the
//! queue wait against the request's deadline*, runs the handler under
//! a per-request [`Guard`] (the request's `CancelToken` is honoured by
//! every governed entry point it calls), and delivers through the
//! non-blocking responder. A handler panic is caught at the worker
//! boundary: the client gets [`ServeError::WorkerPanicked`], the
//! worker increments `serve.worker.recycled` and returns to the loop —
//! workers hold no request state, so recycling is exactly that.
//!
//! Metrics (all under the `serve.` subsystem, recorded when a recorder
//! is attached): `serve.req.admitted`, `serve.shed.queue_full`,
//! `serve.shed.shutdown`, `serve.resp.complete`, `serve.resp.truncated`,
//! `serve.resp.malformed`, `serve.resp.unavailable`,
//! `serve.degraded.<tier>`, `serve.worker.recycled`,
//! `serve.queue.depth_peak` (gauge), and per-endpoint
//! `serve.latency.<endpoint>_ns` / `serve.queue.wait_ns` histograms.

use crate::api::{Request, ServeError, ServeResult, Tier};
use crate::models::ModelSet;
use crate::queue::{AdmissionQueue, Popped, PushError};
use crate::ticket::{ticket_pair, Responder, Ticket};
use dm_core::guard::{Budget, CancelToken, Guard, RunStatus};
use dm_core::obs::{Obs, Recorder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle worker wakes to poll for shutdown.
const POP_POLL: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` is allowed and useful in tests: requests
    /// are admitted (or shed) but never served until shutdown answers
    /// them with `ShuttingDown`.
    pub workers: usize,
    /// Admission-queue capacity; pushes beyond it shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit
    /// budget ([`Server::submit`]). `None` = no implicit deadline.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            default_deadline: Some(Duration::from_millis(250)),
        }
    }
}

/// Deterministic fault injection in the request path (the `failpoints`
/// feature). Knobs compose with dm-guard's own fail points.
#[cfg(feature = "failpoints")]
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Panic inside the handler on every Nth admitted request
    /// (1-based sequence; `Some(3)` panics requests 3, 6, 9…). The
    /// panic is caught by the worker boundary — that is the point.
    pub panic_every: Option<u64>,
    /// Arm dm-guard's fail point on every Nth request's guard: the
    /// first governed check trips `DeadlineExceeded`, forcing the
    /// request down its degradation tier without any real clock
    /// pressure. Simulates a mid-request deadline storm.
    pub trip_every: Option<u64>,
}

struct Job {
    request: Request,
    responder: Responder,
    budget: Budget,
    token: CancelToken,
    submitted: Instant,
    seq: u64,
}

pub(crate) struct Shared {
    queue: AdmissionQueue<Job>,
    /// The served bundle, swappable in place: workers snapshot the
    /// `Arc` per job, so a [`Server::refresh_artifact`] never blocks
    /// in-flight requests — they finish on the bundle they started
    /// with, and the next pop sees the new one.
    models: RwLock<Arc<ModelSet>>,
    recorder: Option<Arc<dyn Recorder>>,
    seq: AtomicU64,
    #[cfg(feature = "failpoints")]
    chaos: ChaosConfig,
}

impl Shared {
    pub(crate) fn obs(&self) -> Obs<'_> {
        match self.recorder.as_deref() {
            Some(rec) => Obs::new(rec),
            None => Obs::noop(),
        }
    }

    fn models(&self) -> Arc<ModelSet> {
        Arc::clone(&self.models.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A running server. Dropping it without [`Server::shutdown`] closes
/// the queue and detaches the workers; prefer an explicit shutdown.
pub struct Server {
    pub(crate) shared: Arc<Shared>,
    config: ServeConfig,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// The attached watcher, if [`Server::install_watch`] was called.
    pub(crate) watch: Mutex<Option<crate::watch::AttachedWatch>>,
    /// Work-unit cap applied to every submission while the watcher has
    /// an SLO alert firing and the policy asks for degradation
    /// (`0` = no cap). See [`crate::watch::WatchPolicy`].
    pub(crate) degrade_cap: AtomicU64,
}

/// What `build` threads through for fault injection: the real knobs
/// with `failpoints`, nothing without.
#[cfg(feature = "failpoints")]
type ChaosParam = ChaosConfig;
#[cfg(not(feature = "failpoints"))]
struct ChaosParam;

/// No fault injection — what `start`/`start_recorded` thread through.
fn quiet_chaos() -> ChaosParam {
    #[cfg(feature = "failpoints")]
    {
        ChaosConfig::default()
    }
    #[cfg(not(feature = "failpoints"))]
    {
        ChaosParam
    }
}

impl Server {
    /// Starts the worker pool over `models` with no recorder.
    pub fn start(models: ModelSet, config: ServeConfig) -> Self {
        Self::build(models, config, None, quiet_chaos())
    }

    /// Starts the pool with a metrics recorder; every admission, shed,
    /// degradation and latency lands in it.
    pub fn start_recorded(
        models: ModelSet,
        config: ServeConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::build(models, config, Some(recorder), quiet_chaos())
    }

    /// Starts the pool with fault injection armed.
    #[cfg(feature = "failpoints")]
    pub fn start_chaos(
        models: ModelSet,
        config: ServeConfig,
        recorder: Option<Arc<dyn Recorder>>,
        chaos: ChaosConfig,
    ) -> Self {
        Self::build(models, config, recorder, chaos)
    }

    fn build(
        models: ModelSet,
        config: ServeConfig,
        recorder: Option<Arc<dyn Recorder>>,
        chaos: ChaosParam,
    ) -> Self {
        #[cfg(not(feature = "failpoints"))]
        let ChaosParam = chaos;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_capacity.max(1)),
            models: RwLock::new(Arc::new(models)),
            recorder,
            seq: AtomicU64::new(0),
            #[cfg(feature = "failpoints")]
            chaos,
        });
        let handles = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            config,
            handles: Mutex::new(handles),
            watch: Mutex::new(None),
            degrade_cap: AtomicU64::new(0),
        }
    }

    /// Submits under the configured default deadline and a fresh
    /// cancel token.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let budget = match self.config.default_deadline {
            Some(d) => Budget::unlimited().with_deadline(d),
            None => Budget::unlimited(),
        };
        self.submit_with(request, budget, CancelToken::new())
    }

    /// Submits with an explicit per-request budget and cancel token.
    /// The budget's deadline is charged from *now* — time spent queued
    /// counts against it, so an admitted request that waits too long
    /// degrades instead of serving a stale full answer.
    pub fn submit_with(
        &self,
        request: Request,
        mut budget: Budget,
        token: CancelToken,
    ) -> Result<Ticket, ServeError> {
        let obs = self.shared.obs();
        // While the watcher has the degradation reaction engaged, cap
        // every request's work budget so overload sheds load through
        // the existing truncation tiers instead of queueing more of it.
        let cap = self.degrade_cap.load(Ordering::SeqCst);
        if cap > 0 {
            budget.max_work = Some(budget.max_work.map_or(cap, |m| m.min(cap)));
        }
        let (ticket, responder) = ticket_pair();
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Job {
            request,
            responder,
            budget,
            token,
            submitted: Instant::now(),
            seq,
        };
        match self.shared.queue.push(job) {
            Ok(depth) => {
                obs.counter("serve.req.admitted", 1);
                obs.gauge("serve.queue.depth", depth as f64);
                obs.gauge_max("serve.queue.depth_peak", depth as f64);
                Ok(ticket)
            }
            Err(PushError::Full(job)) => {
                obs.counter("serve.shed.queue_full", 1);
                let depth = self.shared.queue.capacity();
                job.responder.deliver(Err(ServeError::Overloaded { depth }));
                Err(ServeError::Overloaded { depth })
            }
            Err(PushError::Closed(job)) => {
                obs.counter("serve.shed.shutdown", 1);
                job.responder.deliver(Err(ServeError::ShuttingDown));
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// A snapshot of the current serving bundle (tests inspect
    /// fallback state through it). The snapshot is immutable; a
    /// concurrent [`Server::refresh_artifact`] does not change it.
    pub fn models(&self) -> Arc<ModelSet> {
        self.shared.models()
    }

    /// Swaps the served bundle in place — the streaming refresh hook.
    ///
    /// `update` receives a clone of the current bundle and returns the
    /// replacement (e.g. `|m| m.with_kmeans(stream.model()?)` to
    /// install freshly streamed centroids). The swap is atomic from
    /// the workers' point of view: jobs already running keep the
    /// bundle they snapshotted, jobs popped afterwards serve the new
    /// one. No restart, no queue drain. Emits
    /// `serve.artifact.refreshed`.
    pub fn refresh_artifact(&self, update: impl FnOnce(ModelSet) -> ModelSet) {
        let mut slot = self
            .shared
            .models
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let next = update((**slot).clone());
        *slot = Arc::new(next);
        drop(slot);
        self.shared.obs().counter("serve.artifact.refreshed", 1);
    }

    /// Graceful shutdown: close admission, join workers (they finish
    /// the jobs they hold and drain the queue until empty), then
    /// answer anything still queued with `ShuttingDown`. Returns how
    /// many queued requests were answered that way.
    pub fn shutdown(self) -> usize {
        self.shared.queue.close();
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // A worker that somehow died still lets shutdown proceed.
            let _ = handle.join();
        }
        let leftovers = self.shared.queue.drain();
        let obs = self.shared.obs();
        let n = leftovers.len();
        for job in leftovers {
            obs.counter("serve.shed.shutdown", 1);
            job.responder.deliver(Err(ServeError::ShuttingDown));
        }
        n
    }
}

impl Drop for Server {
    /// A dropped server closes admission so detached workers drain and
    /// exit instead of blocking forever. Explicit [`Server::shutdown`]
    /// (which also joins and answers leftovers) is still preferred.
    fn drop(&mut self) {
        self.shared.queue.close();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop(POP_POLL) {
            Popped::Job(job) => run_job(shared, job),
            Popped::TimedOut => continue,
            Popped::Closed => break,
        }
    }
}

fn run_job(shared: &Shared, job: Job) {
    let Job {
        request,
        responder,
        budget,
        token,
        submitted,
        seq,
    } = job;
    let obs = shared.obs();
    obs.gauge("serve.queue.depth", shared.queue.depth() as f64);
    let waited = submitted.elapsed();
    obs.value("serve.queue.wait_ns", waited.as_nanos() as u64);
    // Charge the queue wait against the deadline: the guard measures
    // from its own construction, so shrink the deadline by the wait
    // (saturating at zero ⇒ the guard trips on its first check and the
    // request degrades immediately).
    let mut effective = budget;
    if let Some(deadline) = effective.deadline {
        effective.deadline = Some(deadline.saturating_sub(waited));
    }
    let endpoint = request.endpoint();
    let mut guard = Guard::with_token(effective, token);
    if let Some(rec) = &shared.recorder {
        guard = guard.with_recorder(Arc::clone(rec));
    }
    #[cfg(feature = "failpoints")]
    if shared.chaos.trip_every.is_some_and(|n| seq % n.max(1) == 0) {
        // trip_at counts checks that *pass*; 0 trips at the very first
        // check site the handler reaches.
        guard = guard.with_failpoint(0, dm_core::guard::TruncationReason::DeadlineExceeded);
    }
    let started = Instant::now();
    #[cfg(feature = "failpoints")]
    let panic_armed = shared
        .chaos
        .panic_every
        .is_some_and(|n| seq % n.max(1) == 0);
    #[cfg(not(feature = "failpoints"))]
    let _ = seq;
    let models = shared.models();
    let outcome: Result<ServeResult, _> = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "failpoints")]
        if panic_armed {
            panic!("failpoint: injected worker panic");
        }
        handle(&models, request, &guard)
    }));
    let result = match outcome {
        Ok(result) => result,
        Err(_) => {
            obs.counter("serve.worker.recycled", 1);
            Err(ServeError::WorkerPanicked)
        }
    };
    match &result {
        Ok(response) => {
            match response.status {
                RunStatus::Complete => obs.counter("serve.resp.complete", 1),
                RunStatus::Truncated(_) => obs.counter("serve.resp.truncated", 1),
            }
            if response.tier != Tier::Full {
                obs.counter_fmt(format_args!("serve.degraded.{}", response.tier.label()), 1);
            }
        }
        Err(ServeError::Malformed(_)) => obs.counter("serve.resp.malformed", 1),
        Err(ServeError::ModelUnavailable(_)) => obs.counter("serve.resp.unavailable", 1),
        Err(_) => {}
    }
    obs.value_fmt(
        format_args!("serve.latency.{}_ns", endpoint.label()),
        started.elapsed().as_nanos() as u64,
    );
    responder.deliver(result);
}

fn handle(models: &ModelSet, request: Request, guard: &Guard) -> ServeResult {
    let (reply, tier) = match request {
        Request::Predict { model, rows } => models.predict(model, &rows, guard)?,
        Request::Score { rows } => models.score(&rows, guard)?,
        Request::Recommend { basket, k } => models.recommend(&basket, k, guard)?,
    };
    Ok(crate::api::ServeResponse {
        reply,
        status: guard.status(),
        tier,
    })
}
