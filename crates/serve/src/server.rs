//! The request loop: admission, per-request guards, worker threads,
//! panic isolation, and instrumentation.
//!
//! Life of a request: [`Server::submit`] validates nothing heavier
//! than queue capacity (admission must stay O(1) under overload) and
//! either sheds with [`ServeError::Overloaded`] or enqueues a job
//! stamped with its submit time. A worker pops the job, *charges the
//! queue wait against the request's deadline*, runs the handler under
//! a per-request [`Guard`] (the request's `CancelToken` is honoured by
//! every governed entry point it calls), and delivers through the
//! non-blocking responder. A handler panic is caught at the worker
//! boundary: the client gets [`ServeError::WorkerPanicked`], the
//! worker increments `serve.worker.recycled` and returns to the loop —
//! workers hold no request state, so recycling is exactly that.
//!
//! Metrics (all under the `serve.` subsystem, recorded when a recorder
//! is attached): `serve.req.admitted`, `serve.shed.queue_full`,
//! `serve.shed.shutdown`, `serve.resp.complete`, `serve.resp.truncated`,
//! `serve.resp.malformed`, `serve.resp.unavailable`,
//! `serve.degraded.<tier>`, `serve.worker.recycled`,
//! `serve.queue.depth_peak` (gauge), and per-endpoint
//! `serve.latency.<endpoint>_ns` / `serve.queue.wait_ns` histograms.

use crate::api::{Request, ServeError, ServeResult, Tier};
use crate::models::ModelSet;
use crate::queue::{AdmissionQueue, Popped, PushError};
use crate::ticket::{ticket_pair, Responder, Ticket};
use dm_core::guard::{Budget, CancelToken, Guard, RunStatus, TruncationReason};
use dm_core::obs::trace::{RequestTrace, TraceConfig, TraceEvent, TraceEventKind, TraceStore};
use dm_core::obs::{Obs, Recorder, TraceId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle worker wakes to poll for shutdown.
const POP_POLL: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` is allowed and useful in tests: requests
    /// are admitted (or shed) but never served until shutdown answers
    /// them with `ShuttingDown`.
    pub workers: usize,
    /// Admission-queue capacity; pushes beyond it shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit
    /// budget ([`Server::submit`]). `None` = no implicit deadline.
    pub default_deadline: Option<Duration>,
    /// Request-scoped tracing. `Some` mints a deterministic
    /// [`TraceId`] per submission, threads lifecycle events through
    /// the request, and retains completed traces in a tail-sampled
    /// [`TraceStore`] ([`Server::tracer`]). `None` (the default) keeps
    /// the request path allocation-free: no ids, no events, no store.
    pub trace: Option<TraceConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            default_deadline: Some(Duration::from_millis(250)),
            trace: None,
        }
    }
}

/// Deterministic fault injection in the request path (the `failpoints`
/// feature). Knobs compose with dm-guard's own fail points.
#[cfg(feature = "failpoints")]
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Panic inside the handler on every Nth admitted request
    /// (1-based sequence; `Some(3)` panics requests 3, 6, 9…). The
    /// panic is caught by the worker boundary — that is the point.
    pub panic_every: Option<u64>,
    /// Arm dm-guard's fail point on every Nth request's guard: the
    /// first governed check trips `DeadlineExceeded`, forcing the
    /// request down its degradation tier without any real clock
    /// pressure. Simulates a mid-request deadline storm.
    pub trip_every: Option<u64>,
}

/// Per-request trace state carried inside the job while tracing is
/// enabled: the minted id, the artifact generation seen at admission
/// (for refresh-race detection), and the events accumulated so far.
struct TraceCtx {
    id: TraceId,
    submitted_gen: u64,
    events: Vec<TraceEvent>,
}

struct Job {
    request: Request,
    responder: Responder,
    budget: Budget,
    token: CancelToken,
    submitted: Instant,
    seq: u64,
    trace: Option<TraceCtx>,
}

pub(crate) struct Shared {
    queue: AdmissionQueue<Job>,
    /// The served bundle, swappable in place: workers snapshot the
    /// `Arc` per job, so a [`Server::refresh_artifact`] never blocks
    /// in-flight requests — they finish on the bundle they started
    /// with, and the next pop sees the new one.
    models: RwLock<Arc<ModelSet>>,
    recorder: Option<Arc<dyn Recorder>>,
    seq: AtomicU64,
    /// Bumped by every [`Server::refresh_artifact`]; traced requests
    /// compare the generation they saw at submit against the one they
    /// are served under and record a `refresh_race` event on mismatch.
    models_gen: AtomicU64,
    /// The tail-sampled trace store, when tracing is configured.
    /// Shard 0 takes the submit-path traces (sheds, shutdown answers);
    /// worker `w` offers into shard `w + 1`.
    pub(crate) tracer: Option<Arc<TraceStore>>,
    #[cfg(feature = "failpoints")]
    chaos: ChaosConfig,
}

impl Shared {
    pub(crate) fn obs(&self) -> Obs<'_> {
        match self.recorder.as_deref() {
            Some(rec) => Obs::new(rec),
            None => Obs::noop(),
        }
    }

    fn models(&self) -> Arc<ModelSet> {
        Arc::clone(&self.models.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A running server. Dropping it without [`Server::shutdown`] closes
/// the queue and detaches the workers; prefer an explicit shutdown.
pub struct Server {
    pub(crate) shared: Arc<Shared>,
    config: ServeConfig,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// The attached watcher, if [`Server::install_watch`] was called.
    pub(crate) watch: Mutex<Option<crate::watch::AttachedWatch>>,
    /// Work-unit cap applied to every submission while the watcher has
    /// an SLO alert firing and the policy asks for degradation
    /// (`0` = no cap). See [`crate::watch::WatchPolicy`].
    pub(crate) degrade_cap: AtomicU64,
}

/// What `build` threads through for fault injection: the real knobs
/// with `failpoints`, nothing without.
#[cfg(feature = "failpoints")]
type ChaosParam = ChaosConfig;
#[cfg(not(feature = "failpoints"))]
struct ChaosParam;

/// No fault injection — what `start`/`start_recorded` thread through.
fn quiet_chaos() -> ChaosParam {
    #[cfg(feature = "failpoints")]
    {
        ChaosConfig::default()
    }
    #[cfg(not(feature = "failpoints"))]
    {
        ChaosParam
    }
}

impl Server {
    /// Starts the worker pool over `models` with no recorder.
    pub fn start(models: ModelSet, config: ServeConfig) -> Self {
        Self::build(models, config, None, quiet_chaos())
    }

    /// Starts the pool with a metrics recorder; every admission, shed,
    /// degradation and latency lands in it.
    pub fn start_recorded(
        models: ModelSet,
        config: ServeConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::build(models, config, Some(recorder), quiet_chaos())
    }

    /// Starts the pool with fault injection armed.
    #[cfg(feature = "failpoints")]
    pub fn start_chaos(
        models: ModelSet,
        config: ServeConfig,
        recorder: Option<Arc<dyn Recorder>>,
        chaos: ChaosConfig,
    ) -> Self {
        Self::build(models, config, recorder, chaos)
    }

    fn build(
        models: ModelSet,
        config: ServeConfig,
        recorder: Option<Arc<dyn Recorder>>,
        chaos: ChaosParam,
    ) -> Self {
        #[cfg(not(feature = "failpoints"))]
        let ChaosParam = chaos;
        let tracer = config
            .trace
            .clone()
            .map(|cfg| Arc::new(TraceStore::new(cfg, config.workers + 1)));
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_capacity.max(1)),
            models: RwLock::new(Arc::new(models)),
            recorder,
            seq: AtomicU64::new(0),
            models_gen: AtomicU64::new(0),
            tracer,
            #[cfg(feature = "failpoints")]
            chaos,
        });
        let handles = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w as u32))
            })
            .collect();
        Self {
            shared,
            config,
            handles: Mutex::new(handles),
            watch: Mutex::new(None),
            degrade_cap: AtomicU64::new(0),
        }
    }

    /// Submits under the configured default deadline and a fresh
    /// cancel token.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        let budget = match self.config.default_deadline {
            Some(d) => Budget::unlimited().with_deadline(d),
            None => Budget::unlimited(),
        };
        self.submit_with(request, budget, CancelToken::new())
    }

    /// Submits with an explicit per-request budget and cancel token.
    /// The budget's deadline is charged from *now* — time spent queued
    /// counts against it, so an admitted request that waits too long
    /// degrades instead of serving a stale full answer.
    pub fn submit_with(
        &self,
        request: Request,
        mut budget: Budget,
        token: CancelToken,
    ) -> Result<Ticket, ServeError> {
        let obs = self.shared.obs();
        // While the watcher has the degradation reaction engaged, cap
        // every request's work budget so overload sheds load through
        // the existing truncation tiers instead of queueing more of it.
        let cap = self.degrade_cap.load(Ordering::SeqCst);
        if cap > 0 {
            budget.max_work = Some(budget.max_work.map_or(cap, |m| m.min(cap)));
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let trace = self.shared.tracer.as_ref().map(|t| TraceCtx {
            id: TraceId::mint(t.seed(), seq),
            submitted_gen: self.shared.models_gen.load(Ordering::Acquire),
            events: vec![TraceEvent {
                at_ns: 0,
                kind: TraceEventKind::Submitted,
            }],
        });
        let (ticket, responder) = ticket_pair(trace.as_ref().map(|t| t.id));
        let mut job = Job {
            request,
            responder,
            budget,
            token,
            submitted: Instant::now(),
            seq,
            trace,
        };
        if let Some(ctx) = &mut job.trace {
            // Recorded before the push (the job is gone on success):
            // the depth is this submission's expected position. Exact
            // under a single submitter; a racy estimate otherwise. A
            // rejected push strips it again in `offer_shed_trace`.
            ctx.events.push(TraceEvent {
                at_ns: 0,
                kind: TraceEventKind::Admitted {
                    depth: self.shared.queue.depth() as u64 + 1,
                },
            });
        }
        match self.shared.queue.push(job) {
            Ok(depth) => {
                obs.counter("serve.req.admitted", 1);
                obs.gauge("serve.queue.depth", depth as f64);
                obs.gauge_max("serve.queue.depth_peak", depth as f64);
                Ok(ticket)
            }
            Err(PushError::Full(job)) => {
                obs.counter("serve.shed.queue_full", 1);
                let depth = self.shared.queue.capacity();
                self.offer_shed_trace(job, "queue_full", false, &obs);
                Err(ServeError::Overloaded { depth })
            }
            Err(PushError::Closed(job)) => {
                obs.counter("serve.shed.shutdown", 1);
                self.offer_shed_trace(job, "shutdown", false, &obs);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Answers a rejected job and, when tracing is on, assembles and
    /// offers its (always-anomalous) shed trace into shard 0.
    /// `admitted` distinguishes shutdown-drained jobs (which really
    /// were queued, so their `admitted` event stands) from admission
    /// rejects (whose optimistic `admitted` event is stripped).
    fn offer_shed_trace(&self, mut job: Job, reason: &str, admitted: bool, obs: &Obs<'_>) {
        let error = match reason {
            "queue_full" => ServeError::Overloaded {
                depth: self.shared.queue.capacity(),
            },
            _ => ServeError::ShuttingDown,
        };
        job.responder.deliver(Err(error));
        let (Some(tracer), Some(mut ctx)) = (self.shared.tracer.as_ref(), job.trace.take()) else {
            return;
        };
        if !admitted
            && ctx
                .events
                .last()
                .is_some_and(|e| matches!(e.kind, TraceEventKind::Admitted { .. }))
        {
            ctx.events.pop();
        }
        let total_ns = job.submitted.elapsed().as_nanos() as u64;
        ctx.events.push(TraceEvent {
            at_ns: total_ns,
            kind: TraceEventKind::Shed {
                reason: reason.to_owned(),
            },
        });
        tracer.offer(
            0,
            RequestTrace {
                id: ctx.id,
                seq: job.seq,
                endpoint: job.request.endpoint().label().to_owned(),
                events: ctx.events,
                queue_ns: 0,
                exec_ns: 0,
                total_ns,
                pinned: Vec::new(),
            },
            obs,
        );
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// A snapshot of the current serving bundle (tests inspect
    /// fallback state through it). The snapshot is immutable; a
    /// concurrent [`Server::refresh_artifact`] does not change it.
    pub fn models(&self) -> Arc<ModelSet> {
        self.shared.models()
    }

    /// Swaps the served bundle in place — the streaming refresh hook.
    ///
    /// `update` receives a clone of the current bundle and returns the
    /// replacement (e.g. `|m| m.with_kmeans(stream.model()?)` to
    /// install freshly streamed centroids). The swap is atomic from
    /// the workers' point of view: jobs already running keep the
    /// bundle they snapshotted, jobs popped afterwards serve the new
    /// one. No restart, no queue drain. Emits
    /// `serve.artifact.refreshed`.
    pub fn refresh_artifact(&self, update: impl FnOnce(ModelSet) -> ModelSet) {
        let mut slot = self
            .shared
            .models
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let next = update((**slot).clone());
        *slot = Arc::new(next);
        // Bump the generation while still holding the write lock so a
        // worker can never observe the new bundle under the old number.
        self.shared.models_gen.fetch_add(1, Ordering::Release);
        drop(slot);
        self.shared.obs().counter("serve.artifact.refreshed", 1);
    }

    /// The trace store, when [`ServeConfig::trace`] was set. Query it
    /// for retained traces ([`TraceStore::retained`],
    /// [`TraceStore::find`]) or serialize with [`TraceStore::to_json`]
    /// for `dm trace`.
    pub fn tracer(&self) -> Option<Arc<TraceStore>> {
        self.shared.tracer.clone()
    }

    /// Graceful shutdown: close admission, join workers (they finish
    /// the jobs they hold and drain the queue until empty), then
    /// answer anything still queued with `ShuttingDown`. Returns how
    /// many queued requests were answered that way.
    pub fn shutdown(self) -> usize {
        self.shared.queue.close();
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // A worker that somehow died still lets shutdown proceed.
            let _ = handle.join();
        }
        let leftovers = self.shared.queue.drain();
        let obs = self.shared.obs();
        let n = leftovers.len();
        for job in leftovers {
            obs.counter("serve.shed.shutdown", 1);
            // Shed-at-shutdown traces are anomalous and always offered,
            // so gated experiments see exact retention counts even for
            // requests that never reached a worker.
            self.offer_shed_trace(job, "shutdown", true, &obs);
        }
        n
    }
}

impl Drop for Server {
    /// A dropped server closes admission so detached workers drain and
    /// exit instead of blocking forever. Explicit [`Server::shutdown`]
    /// (which also joins and answers leftovers) is still preferred.
    fn drop(&mut self) {
        self.shared.queue.close();
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    loop {
        match shared.queue.pop(POP_POLL) {
            Popped::Job(job) => run_job(shared, job, worker),
            Popped::TimedOut => continue,
            Popped::Closed => break,
        }
    }
}

/// Short stable tag for a guard trip, used in trace events (the
/// `Display` form is prose for the event log).
fn trip_label(reason: TruncationReason) -> &'static str {
    match reason {
        TruncationReason::DeadlineExceeded => "deadline",
        TruncationReason::WorkLimitExceeded => "work_limit",
        TruncationReason::IterationLimitReached => "iteration_limit",
        TruncationReason::Cancelled => "cancelled",
    }
}

fn run_job(shared: &Shared, job: Job, worker: u32) {
    let Job {
        request,
        responder,
        budget,
        token,
        submitted,
        seq,
        mut trace,
    } = job;
    let obs = shared.obs();
    obs.gauge("serve.queue.depth", shared.queue.depth() as f64);
    let waited = submitted.elapsed();
    let queue_ns = waited.as_nanos() as u64;
    obs.value("serve.queue.wait_ns", queue_ns);
    obs.value("serve.request.queue_ns", queue_ns);
    if let Some(ctx) = &mut trace {
        ctx.events.push(TraceEvent {
            at_ns: queue_ns,
            kind: TraceEventKind::Dequeued {
                worker,
                wait_ns: queue_ns,
            },
        });
        let served_gen = shared.models_gen.load(Ordering::Acquire);
        if served_gen != ctx.submitted_gen {
            ctx.events.push(TraceEvent {
                at_ns: queue_ns,
                kind: TraceEventKind::RefreshRace {
                    submitted_gen: ctx.submitted_gen,
                    served_gen,
                },
            });
        }
    }
    // Charge the queue wait against the deadline: the guard measures
    // from its own construction, so shrink the deadline by the wait
    // (saturating at zero ⇒ the guard trips on its first check and the
    // request degrades immediately).
    let mut effective = budget;
    if let Some(deadline) = effective.deadline {
        effective.deadline = Some(deadline.saturating_sub(waited));
    }
    let endpoint = request.endpoint();
    let mut guard = Guard::with_token(effective, token);
    if let Some(rec) = &shared.recorder {
        guard = guard.with_recorder(Arc::clone(rec));
    }
    #[cfg(feature = "failpoints")]
    if shared.chaos.trip_every.is_some_and(|n| seq % n.max(1) == 0) {
        // trip_at counts checks that *pass*; 0 trips at the very first
        // check site the handler reaches.
        guard = guard.with_failpoint(0, TruncationReason::DeadlineExceeded);
    }
    let started = Instant::now();
    #[cfg(feature = "failpoints")]
    let panic_armed = shared
        .chaos
        .panic_every
        .is_some_and(|n| seq % n.max(1) == 0);
    #[cfg(not(feature = "failpoints"))]
    let _ = seq;
    let models = shared.models();
    let outcome: Result<ServeResult, _> = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "failpoints")]
        if panic_armed {
            panic!("failpoint: injected worker panic");
        }
        handle(&models, request, &guard)
    }));
    let result = match outcome {
        Ok(result) => result,
        Err(_) => {
            obs.counter("serve.worker.recycled", 1);
            Err(ServeError::WorkerPanicked)
        }
    };
    let exec_ns = started.elapsed().as_nanos() as u64;
    obs.value("serve.request.exec_ns", exec_ns);
    match &result {
        Ok(response) => {
            match response.status {
                RunStatus::Complete => obs.counter("serve.resp.complete", 1),
                RunStatus::Truncated(_) => obs.counter("serve.resp.truncated", 1),
            }
            if response.tier != Tier::Full {
                obs.counter_fmt(format_args!("serve.degraded.{}", response.tier.label()), 1);
            }
        }
        Err(ServeError::Malformed(_)) => obs.counter("serve.resp.malformed", 1),
        Err(ServeError::ModelUnavailable(_)) => obs.counter("serve.resp.unavailable", 1),
        Err(_) => {}
    }
    match &trace {
        Some(ctx) => obs.value_traced_fmt(
            format_args!("serve.latency.{}_ns", endpoint.label()),
            exec_ns,
            ctx.id,
        ),
        None => obs.value_fmt(
            format_args!("serve.latency.{}_ns", endpoint.label()),
            exec_ns,
        ),
    }
    if let Some(mut ctx) = trace {
        let total_ns = submitted.elapsed().as_nanos() as u64;
        let outcome_label = match &result {
            Ok(response) => {
                if let RunStatus::Truncated(reason) = response.status {
                    ctx.events.push(TraceEvent {
                        at_ns: total_ns,
                        kind: TraceEventKind::GuardTrip {
                            reason: trip_label(reason).to_owned(),
                        },
                    });
                }
                if response.tier != Tier::Full {
                    ctx.events.push(TraceEvent {
                        at_ns: total_ns,
                        kind: TraceEventKind::Degraded {
                            tier: response.tier.label().to_owned(),
                        },
                    });
                }
                if response.status.is_complete() {
                    "complete"
                } else {
                    "truncated"
                }
            }
            Err(ServeError::WorkerPanicked) => {
                ctx.events.push(TraceEvent {
                    at_ns: total_ns,
                    kind: TraceEventKind::PanicRecovered,
                });
                "panicked"
            }
            Err(ServeError::Malformed(_)) => "malformed",
            Err(ServeError::ModelUnavailable(_)) => "unavailable",
            Err(_) => "error",
        };
        ctx.events.push(TraceEvent {
            at_ns: total_ns,
            kind: TraceEventKind::Finished {
                outcome: outcome_label.to_owned(),
            },
        });
        responder.deliver(result);
        if let Some(tracer) = &shared.tracer {
            tracer.offer(
                worker as usize + 1,
                RequestTrace {
                    id: ctx.id,
                    seq,
                    endpoint: endpoint.label().to_owned(),
                    events: ctx.events,
                    queue_ns,
                    exec_ns,
                    total_ns,
                    pinned: Vec::new(),
                },
                &obs,
            );
        }
    } else {
        responder.deliver(result);
    }
}

fn handle(models: &ModelSet, request: Request, guard: &Guard) -> ServeResult {
    let (reply, tier) = match request {
        Request::Predict { model, rows } => models.predict(model, &rows, guard)?,
        Request::Score { rows } => models.score(&rows, guard)?,
        Request::Recommend { basket, k } => models.recommend(&basket, k, guard)?,
    };
    Ok(crate::api::ServeResponse {
        reply,
        status: guard.status(),
        tier,
    })
}
