//! The bundled load-generator client: closed-loop worker threads
//! driving a [`Server`] with a **seeded RNG stream** (every run with
//! the same config is bit-reproducible, retry jitter included — that
//! is what lets experiment E15 gate serving counters at 0% tolerance)
//! and a retry policy built not to amplify overload:
//!
//! * retries apply **only** to [`ServeError::Overloaded`] sheds —
//!   malformed/unavailable answers are the client's fault and retrying
//!   them is pure waste;
//! * per-request attempts are capped (`max_attempts`);
//! * all clients share one global **retry budget** (a token pot) — once
//!   spent, further sheds are accepted as final, so a saturated server
//!   sees load *decrease*, not the classic retry storm;
//! * backoff is exponential with full jitter
//!   (`uniform(0 ..= base * 2^attempt)`, capped), drawn from the
//!   client's own seeded RNG.

use crate::api::{ModelKind, Request, ServeError, Tier};
use crate::server::Server;
use dm_core::guard::{Budget, CancelToken, RunStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Relative weights for the three endpoints in the generated stream.
#[derive(Debug, Clone, Copy)]
pub struct RequestMix {
    /// Weight of predict requests (split evenly across model kinds).
    pub predict: u32,
    /// Weight of score requests.
    pub score: u32,
    /// Weight of recommend requests.
    pub recommend: u32,
}

impl Default for RequestMix {
    fn default() -> Self {
        Self {
            predict: 2,
            score: 1,
            recommend: 1,
        }
    }
}

/// Load-generator configuration. `Default` is a small smoke load.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Base seed; client `i` derives its own independent stream from
    /// `seed` and `i`, so reports are reproducible at any thread count.
    pub seed: u64,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests each client completes (counting a shed request whose
    /// retries are exhausted as completed).
    pub requests_per_client: usize,
    /// Max submit attempts per request (1 = never retry).
    pub max_attempts: u32,
    /// Global retry-token pot shared by all clients.
    pub retry_budget: u64,
    /// Backoff base; attempt `a` sleeps `uniform(0 ..= base * 2^a)`.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-request deadline forwarded as the request's budget.
    pub deadline: Option<Duration>,
    /// Per-request work cap (drives deterministic degradation in the
    /// chaos suite; `None` for throughput runs).
    pub max_work: Option<u64>,
    /// How long a client waits on its ticket before giving up.
    pub wait_timeout: Duration,
    /// Request mix weights.
    pub mix: RequestMix,
    /// Fraction of requests sent deliberately malformed (wrong row
    /// width), exercising the validation path under load. Drawn from
    /// the seeded stream, so counts are reproducible.
    pub malformed_ratio: f64,
    /// Fraction of requests whose client *stalls*: it submits and then
    /// abandons the ticket without waiting, like a client that went
    /// away. The server must not care.
    pub stall_ratio: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            clients: 2,
            requests_per_client: 50,
            max_attempts: 3,
            retry_budget: 100,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            deadline: Some(Duration::from_millis(250)),
            max_work: None,
            wait_timeout: Duration::from_secs(5),
            mix: RequestMix::default(),
            malformed_ratio: 0.0,
            stall_ratio: 0.0,
        }
    }
}

/// Aggregated outcome of one load run. All counters are deterministic
/// for a fixed config against a deterministic server; latencies and
/// `elapsed` are wall-clock (noisy).
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Submit attempts, including retries.
    pub attempts: u64,
    /// Requests answered `Complete` on the full tier.
    pub ok: u64,
    /// Requests answered with a `Truncated` status (any tier).
    pub truncated: u64,
    /// Requests answered from a degraded tier (subset of `ok` +
    /// `truncated` by tier, not by status).
    pub degraded: u64,
    /// Requests finally shed (`Overloaded` after retries ran out).
    pub shed: u64,
    /// Requests refused as malformed.
    pub malformed: u64,
    /// Requests answered `WorkerPanicked`.
    pub panicked: u64,
    /// Requests answered `ShuttingDown`.
    pub shutdown: u64,
    /// Ticket waits that timed out client-side.
    pub wait_timeouts: u64,
    /// Tickets deliberately abandoned by the stall chaos knob.
    pub stalled: u64,
    /// Retries actually performed (token pot permitting).
    pub retries: u64,
    /// Per-response wall latency in nanoseconds, submission order not
    /// preserved (merged across clients, then sorted).
    pub latencies_ns: Vec<u64>,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Completed responses per second (everything that got *an*
    /// answer, including typed errors — the server did its job).
    pub fn qps(&self) -> f64 {
        let answered =
            (self.ok + self.truncated + self.shed + self.malformed + self.panicked + self.shutdown)
                as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            answered / secs
        } else {
            0.0
        }
    }

    /// The `q`-quantile (0.0–1.0) of response latency in nanoseconds;
    /// 0 when nothing was measured.
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies_ns[idx]
    }

    fn absorb(&mut self, other: LoadReport) {
        self.attempts += other.attempts;
        self.ok += other.ok;
        self.truncated += other.truncated;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.malformed += other.malformed;
        self.panicked += other.panicked;
        self.shutdown += other.shutdown;
        self.wait_timeouts += other.wait_timeouts;
        self.stalled += other.stalled;
        self.retries += other.retries;
        self.latencies_ns.extend(other.latencies_ns);
    }
}

/// Drives `server` with `config` and blocks until every client
/// finishes its quota.
pub fn run(server: &Server, config: &LoadGenConfig) -> LoadReport {
    let retry_pot = AtomicU64::new(config.retry_budget);
    let started = Instant::now();
    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client| {
                scope.spawn({
                    let retry_pot = &retry_pot;
                    move || client_loop(server, config, client as u64, retry_pot)
                })
            })
            .collect();
        for handle in handles {
            if let Ok(partial) = handle.join() {
                report.absorb(partial);
            }
        }
    });
    report.elapsed = started.elapsed();
    report.latencies_ns.sort_unstable();
    report
}

fn client_loop(
    server: &Server,
    config: &LoadGenConfig,
    client: u64,
    retry_pot: &AtomicU64,
) -> LoadReport {
    // splitmix-style stream separation: same base seed, disjoint
    // per-client streams.
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_add(client.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut report = LoadReport::default();
    let schema_width = server.models().schema().len();
    for _ in 0..config.requests_per_client {
        let malformed = config.malformed_ratio > 0.0 && rng.gen::<f64>() < config.malformed_ratio;
        let stall = config.stall_ratio > 0.0 && rng.gen::<f64>() < config.stall_ratio;
        let request = gen_request(&mut rng, config.mix, schema_width, malformed);
        drive_one(
            server,
            config,
            request,
            stall,
            &mut rng,
            retry_pot,
            &mut report,
        );
    }
    report
}

/// Draws one request from the mix. `malformed` appends a bogus extra
/// feature so validation refuses it.
fn gen_request(rng: &mut StdRng, mix: RequestMix, width: usize, malformed: bool) -> Request {
    let total = (mix.predict + mix.score + mix.recommend).max(1);
    let pick = rng.gen_range(0..total);
    let row = |rng: &mut StdRng| -> Vec<f64> {
        let w = if malformed { width + 1 } else { width };
        (0..w).map(|_| rng.gen::<f64>() * 10.0 - 1.0).collect()
    };
    if pick < mix.predict {
        let kinds = [
            ModelKind::Knn,
            ModelKind::Tree,
            ModelKind::Ensemble,
            ModelKind::NaiveBayes,
        ];
        let kind = kinds[rng.gen_range(0..kinds.len() as u32) as usize];
        let n = rng.gen_range(1..4u32) as usize;
        Request::Predict {
            model: kind,
            rows: (0..n).map(|_| row(rng)).collect(),
        }
    } else if pick < mix.predict + mix.score {
        let n = rng.gen_range(1..4u32) as usize;
        Request::Score {
            rows: (0..n).map(|_| row(rng)).collect(),
        }
    } else {
        let n = rng.gen_range(0..4u32) as usize;
        let basket = (0..n).map(|_| rng.gen_range(0..100u32)).collect();
        Request::Recommend {
            basket,
            k: if malformed {
                0
            } else {
                rng.gen_range(1..6u32) as usize
            },
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_one(
    server: &Server,
    config: &LoadGenConfig,
    request: Request,
    stall: bool,
    rng: &mut StdRng,
    retry_pot: &AtomicU64,
    report: &mut LoadReport,
) {
    let mut attempt = 0u32;
    loop {
        let mut budget = Budget::unlimited();
        if let Some(d) = config.deadline {
            budget = budget.with_deadline(d);
        }
        if let Some(w) = config.max_work {
            budget = budget.with_max_work(w);
        }
        report.attempts += 1;
        let submit_at = Instant::now();
        match server.submit_with(request.clone(), budget, CancelToken::new()) {
            Ok(ticket) => {
                if stall {
                    report.stalled += 1;
                    drop(ticket);
                    return;
                }
                match ticket.wait(config.wait_timeout) {
                    Ok(response) => {
                        let latency = submit_at.elapsed().as_nanos() as u64;
                        report.latencies_ns.push(latency);
                        match response.status {
                            RunStatus::Complete => report.ok += 1,
                            RunStatus::Truncated(_) => report.truncated += 1,
                        }
                        if response.tier != Tier::Full {
                            report.degraded += 1;
                        }
                    }
                    Err(ServeError::ResponseTimeout) => report.wait_timeouts += 1,
                    Err(ServeError::Malformed(_)) => report.malformed += 1,
                    Err(ServeError::WorkerPanicked) => report.panicked += 1,
                    Err(ServeError::ShuttingDown) => report.shutdown += 1,
                    Err(ServeError::ModelUnavailable(_)) => report.malformed += 1,
                    Err(ServeError::Overloaded { .. }) => report.shed += 1,
                }
                return;
            }
            Err(ServeError::Overloaded { .. }) => {
                attempt += 1;
                let may_retry = attempt < config.max_attempts
                    && retry_pot
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |tokens| {
                            tokens.checked_sub(1)
                        })
                        .is_ok();
                if !may_retry {
                    report.shed += 1;
                    return;
                }
                report.retries += 1;
                backoff(rng, config, attempt);
            }
            Err(ServeError::ShuttingDown) => {
                report.shutdown += 1;
                return;
            }
            Err(_) => {
                // submit_with only sheds or reports shutdown today;
                // anything else would be answered via the ticket.
                report.malformed += 1;
                return;
            }
        }
    }
}

/// Full-jitter exponential backoff from the client's seeded stream.
fn backoff(rng: &mut StdRng, config: &LoadGenConfig, attempt: u32) {
    let exp = config
        .base_backoff
        .saturating_mul(1u32 << attempt.min(16))
        .min(config.max_backoff);
    let ceil_ns = exp.as_nanos() as u64;
    if ceil_ns == 0 {
        return;
    }
    let sleep_ns = rng.gen_range(0..ceil_ns.saturating_add(1));
    std::thread::sleep(Duration::from_nanos(sleep_ns));
}
