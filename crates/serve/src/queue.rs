//! The bounded admission queue: a `Mutex<VecDeque>` + `Condvar` MPMC
//! channel whose *only* growth policy is typed rejection. `push` never
//! blocks and never allocates past capacity — overload is shed at the
//! door, which is what keeps tail latency bounded when demand exceeds
//! service rate.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a `push` was refused. The item comes back so the caller can
/// answer its client.
pub(crate) enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// [`AdmissionQueue::close`] was called.
    Closed(T),
}

/// What a blocking `pop` produced.
pub(crate) enum Popped<T> {
    /// A job.
    Job(T),
    /// Nothing arrived within the timeout; poll again (workers use
    /// this to notice shutdown promptly).
    TimedOut,
    /// Queue closed and fully drained — the worker should exit.
    Closed,
}

struct Inner<T> {
    deque: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity MPMC queue with explicit close/drain semantics.
pub(crate) struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                deque: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// A panicking worker cannot poison admission: the queue's state is
    /// always internally consistent (push/pop are single operations),
    /// so we take the guard back from a poisoned lock.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking admission. Returns the depth *after* the push (for
    /// the queue-depth gauge), or the item back with a typed refusal.
    pub(crate) fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.deque.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.deque.push_back(item);
        let depth = inner.deque.len();
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Blocking pop with a poll timeout. After `close`, remaining jobs
    /// are still handed out until the queue is empty, then `Closed`.
    pub(crate) fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.deque.pop_front() {
                return Popped::Job(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, result) = self
                .nonempty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if result.timed_out() && inner.deque.is_empty() && !inner.closed {
                return Popped::TimedOut;
            }
        }
    }

    /// Closes the queue: future pushes are refused, blocked poppers are
    /// woken. Queued jobs stay queued (see [`AdmissionQueue::drain`]).
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
    }

    /// Removes and returns everything still queued (shutdown path: the
    /// server answers each with `ShuttingDown` instead of dropping it).
    pub(crate) fn drain(&self) -> Vec<T> {
        self.lock().deque.drain(..).collect()
    }

    /// Current depth (tests and gauges).
    pub(crate) fn depth(&self) -> usize {
        self.lock().deque.len()
    }

    /// The fixed capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_respects_capacity_and_returns_depth() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(q.push(1), Ok(1)));
        assert!(matches!(q.push(2), Ok(2)));
        match q.push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            _ => panic!("expected Full"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn pop_times_out_on_empty_queue() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(1);
        assert!(matches!(q.pop(Duration::from_millis(5)), Popped::TimedOut));
    }

    #[test]
    fn close_refuses_pushes_and_drains_leftovers() {
        let q = AdmissionQueue::new(4);
        q.push(1).ok();
        q.push(2).ok();
        q.close();
        match q.push(3) {
            Err(PushError::Closed(item)) => assert_eq!(item, 3),
            _ => panic!("expected Closed"),
        }
        // Queued jobs still pop after close…
        assert!(matches!(q.pop(Duration::from_millis(5)), Popped::Job(1)));
        // …and drain takes the rest.
        assert_eq!(q.drain(), vec![2]);
        assert!(matches!(q.pop(Duration::from_millis(5)), Popped::Closed));
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = Arc::new(AdmissionQueue::new(1));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        q.push(42u32).ok();
        assert!(matches!(handle.join().unwrap(), Popped::Job(42)));
    }
}
