//! `dm-serve` — an overload-resilient model-serving layer.
//!
//! The workspace's miners and learners produce fitted artifacts
//! (decision trees and bagged ensembles, naive Bayes, kNN indexes,
//! k-means centroids, mined rule sets); this crate puts them behind a
//! long-lived, std-only thread-pool request loop with **robustness as
//! the first-class design axis**:
//!
//! * **Bounded admission** — a fixed-capacity queue sheds excess load
//!   with the typed [`ServeError::Overloaded`] instead of growing
//!   without bound ([`queue`]).
//! * **Per-request budgets** — every request runs under a
//!   [`dm_core::guard::Guard`] whose deadline is charged from *submit*
//!   time, so queue wait eats the budget exactly like compute does.
//! * **Graceful degradation** — when a budget trips mid-request the
//!   server answers from a cheaper tier ([`Tier`]): kNN falls back to
//!   per-class centroid distance, rule recommendation to top-support
//!   singletons, tree/ensemble/NB classification to the training
//!   majority class. Responses are never silently wrong: the tier and
//!   the guard's `Complete`/`Truncated` status ride on every
//!   [`ServeResponse`].
//! * **Panic isolation** — a request that panics is caught at the
//!   worker boundary, answered with [`ServeError::WorkerPanicked`],
//!   and the worker returns to the loop (`serve.worker.recycled`).
//! * **Typed everything** — clients always get `Complete`, honestly
//!   `Truncated`, or a typed [`ServeError`]; there is no path that
//!   drops a request on the floor.
//!
//! The bundled [`loadgen`] client drives the server with a seeded RNG
//! stream (reproducible chaos runs), jittered exponential backoff, and
//! a global retry budget so retries cannot amplify an overload. The
//! `failpoints` feature extends dm-guard's deterministic fault
//! injection into the request path (worker panics, deadline storms,
//! malformed and stalling clients); `tests/chaos.rs` asserts the
//! server stays live through all of it.
//!
//! ```
//! use dm_serve::{ModelSet, Request, ModelKind, Server, ServeConfig};
//!
//! let models = ModelSet::demo(7).unwrap();
//! let server = Server::start(models, ServeConfig::default());
//! let ticket = server
//!     .submit(Request::Predict {
//!         model: ModelKind::Knn,
//!         rows: vec![vec![0.1, 0.2]],
//!     })
//!     .unwrap();
//! let response = ticket.wait(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(response.tier.label(), "full");
//! let _ = server.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod artifacts;
pub mod loadgen;
mod models;
mod queue;
mod server;
mod ticket;
pub mod watch;

pub use api::{
    Endpoint, ModelKind, Recommendation, Reply, Request, ServeError, ServeResponse, ServeResult,
    Tier,
};
pub use artifacts::{load_artifacts, save_artifacts, ArtifactError, ARTIFACT_SCHEMA};
pub use loadgen::{LoadGenConfig, LoadReport, RequestMix};
pub use models::ModelSet;
pub use server::{ServeConfig, Server};
pub use ticket::Ticket;
pub use watch::WatchPolicy;

/// Request-tracing vocabulary, re-exported from `dm_obs::trace` so a
/// serving deployment can configure [`ServeConfig::trace`] and query
/// [`Server::tracer`] without a direct `dm-obs` dependency.
pub use dm_core::obs::trace::{RequestTrace, TraceConfig, TraceStats, TraceStore};
pub use dm_core::obs::TraceId;

#[cfg(feature = "failpoints")]
pub use server::ChaosConfig;
