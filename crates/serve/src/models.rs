//! The installed model bundle and its governed handlers.
//!
//! A [`ModelSet`] owns one fitted model per serving role plus the
//! *precomputed fallback state* each degradation tier needs: per-class
//! centroids of the kNN training set, the training-majority class, and
//! the top-support frequent singletons. Computing fallbacks at install
//! time is the point — the degraded path must be strictly cheaper than
//! the path that just tripped its budget.
//!
//! Handlers charge the request's [`Guard`] one work unit per row (or
//! per rule scanned) and degrade at the first trip:
//!
//! * `predict` answers every requested row: rows processed before the
//!   trip get the primary model, the tail gets the fallback tier
//!   (centroids for kNN, majority class otherwise).
//! * `score` has no cheaper tier (nearest-centroid distance already
//!   *is* the cheap primitive), so it degrades by truncation: the
//!   reply carries the computed prefix and the `Truncated` status.
//! * `recommend` abandons the rule scan and serves top-support
//!   singletons.
//!
//! The direct fallback entry points ([`ModelSet::centroid_predict`],
//! [`ModelSet::top_support_recommend`]) are public so the equivalence
//! suite can assert a degraded response is bit-identical to calling
//! the fallback directly.

use crate::api::{ModelKind, Recommendation, Reply, ServeError, Tier};
use dm_core::assoc::Rule;
use dm_core::bayes::NaiveBayesModel;
use dm_core::cluster::KMeansModel;
use dm_core::dataset::{Column, Dataset, Matrix};
use dm_core::guard::Guard;
use dm_core::knn::KnnModel;
use dm_core::tree::{BaggedTreesModel, DecisionTree};

/// A fitted model bundle plus precomputed degradation state.
#[derive(Debug, Clone, Default)]
pub struct ModelSet {
    schema: Vec<String>,
    tree: Option<DecisionTree>,
    ensemble: Option<BaggedTreesModel>,
    nb: Option<NaiveBayesModel>,
    knn: Option<KnnModel>,
    /// Per-class centroids of the kNN training set: `(centroids,
    /// class_of_row)`. The centroid tier classifies by nearest row.
    knn_centroids: Option<(Matrix, Vec<u32>)>,
    kmeans: Option<KMeansModel>,
    rules: Vec<Rule>,
    /// Frequent singletons by descending support — the degraded
    /// recommendation vocabulary. Score is the absolute support count.
    top_singletons: Vec<Recommendation>,
    default_class: u32,
}

impl ModelSet {
    /// An empty bundle serving the given numeric feature schema. Every
    /// endpoint answers `ModelUnavailable` until a model is installed.
    pub fn new(schema: Vec<String>) -> Self {
        Self {
            schema,
            ..Self::default()
        }
    }

    /// The feature names every predict/score row must match in width.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Sets the class the majority-fallback tier answers with
    /// (conventionally the training-set majority).
    pub fn with_default_class(mut self, class: u32) -> Self {
        self.default_class = class;
        self
    }

    /// The majority-fallback class.
    pub fn default_class(&self) -> u32 {
        self.default_class
    }

    /// Installs the decision tree.
    pub fn with_tree(mut self, tree: DecisionTree) -> Self {
        self.tree = Some(tree);
        self
    }

    /// The installed tree, if any (artifact serialization).
    pub fn tree(&self) -> Option<&DecisionTree> {
        self.tree.as_ref()
    }

    /// Installs the bagged-trees ensemble (not artifact-serializable;
    /// refit in process).
    pub fn with_ensemble(mut self, ensemble: BaggedTreesModel) -> Self {
        self.ensemble = Some(ensemble);
        self
    }

    /// Installs the naive Bayes model (not artifact-serializable;
    /// refit in process).
    pub fn with_naive_bayes(mut self, nb: NaiveBayesModel) -> Self {
        self.nb = Some(nb);
        self
    }

    /// Installs the kNN model and precomputes its centroid-fallback
    /// tier: one mean vector per class of the training set.
    pub fn with_knn(mut self, knn: KnnModel) -> Self {
        self.knn_centroids = class_centroids(knn.train(), knn.labels());
        self.knn = Some(knn);
        self
    }

    /// The installed kNN model, if any (artifact serialization).
    pub fn knn(&self) -> Option<&KnnModel> {
        self.knn.as_ref()
    }

    /// Installs the k-means model backing the score endpoint.
    pub fn with_kmeans(mut self, kmeans: KMeansModel) -> Self {
        self.kmeans = Some(kmeans);
        self
    }

    /// The installed k-means model, if any (artifact serialization).
    pub fn kmeans(&self) -> Option<&KMeansModel> {
        self.kmeans.as_ref()
    }

    /// Installs the mined rule set and its fallback vocabulary.
    /// `singletons` is `(item, support_count)` by descending support —
    /// pass `FrequentItemsets::singletons_by_support()`.
    pub fn with_rules(mut self, rules: Vec<Rule>, singletons: Vec<(u32, usize)>) -> Self {
        self.rules = rules;
        self.top_singletons = singletons
            .into_iter()
            .map(|(item, count)| Recommendation {
                item,
                score: count as f64,
            })
            .collect();
        self
    }

    /// The installed rules (artifact serialization).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The fallback singleton vocabulary (artifact serialization).
    pub fn top_singletons(&self) -> &[Recommendation] {
        &self.top_singletons
    }

    // -- validation ---------------------------------------------------

    /// Validates feature rows against the schema and converts them to a
    /// matrix. Cheap relative to any model it feeds, and *not* charged
    /// to the budget: malformed input must yield `Malformed` even under
    /// a deadline storm, never a silent fallback answer.
    fn to_matrix(&self, rows: &[Vec<f64>]) -> Result<Matrix, ServeError> {
        if rows.is_empty() {
            return Err(ServeError::Malformed("empty row batch".into()));
        }
        let width = self.schema.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != width {
                return Err(ServeError::Malformed(format!(
                    "row {i} has {} features, schema has {width}",
                    row.len()
                )));
            }
            if let Some(j) = row.iter().position(|v| !v.is_finite()) {
                return Err(ServeError::Malformed(format!(
                    "row {i} feature {j} is not finite"
                )));
            }
        }
        Matrix::from_rows(rows).map_err(|e| ServeError::Malformed(e.to_string()))
    }

    /// The matrix re-expressed as a [`Dataset`] for the dataset-shaped
    /// classifiers (tree, ensemble, NB).
    fn to_dataset(&self, matrix: &Matrix) -> Result<Dataset, ServeError> {
        let columns = self
            .schema
            .iter()
            .enumerate()
            .map(|(c, name)| {
                let values = (0..matrix.rows()).map(|r| matrix.row(r)[c]).collect();
                (name.clone(), Column::from_numeric(values))
            })
            .collect();
        Dataset::from_columns("serve-request", columns)
            .map_err(|e| ServeError::Malformed(e.to_string()))
    }

    // -- handlers -----------------------------------------------------

    /// Classifies `rows` with the requested model under `guard`.
    pub fn predict(
        &self,
        model: ModelKind,
        rows: &[Vec<f64>],
        guard: &Guard,
    ) -> Result<(Reply, Tier), ServeError> {
        let matrix = self.to_matrix(rows)?;
        match model {
            ModelKind::Knn => self.predict_knn(&matrix, guard),
            ModelKind::Tree | ModelKind::Ensemble | ModelKind::NaiveBayes => {
                self.predict_dataset_model(model, &matrix, guard)
            }
        }
    }

    fn predict_knn(&self, matrix: &Matrix, guard: &Guard) -> Result<(Reply, Tier), ServeError> {
        let Some(knn) = &self.knn else {
            return Err(ServeError::ModelUnavailable("knn"));
        };
        let outcome = knn
            .predict_governed(matrix, guard)
            .map_err(|e| ServeError::Malformed(e.to_string()))?;
        let mut classes = outcome.result;
        if classes.len() == matrix.rows() {
            return Ok((Reply::Classes(classes), Tier::Full));
        }
        // Budget tripped mid-batch: answer the tail from the centroid
        // tier (precomputed at install; one distance pass per row).
        let tier = match &self.knn_centroids {
            Some((centroids, cls)) => {
                for r in classes.len()..matrix.rows() {
                    classes.push(nearest_class(centroids, cls, matrix.row(r)));
                }
                Tier::CentroidFallback
            }
            None => {
                classes.resize(matrix.rows(), self.default_class);
                Tier::MajorityFallback
            }
        };
        Ok((Reply::Classes(classes), tier))
    }

    fn predict_dataset_model(
        &self,
        model: ModelKind,
        matrix: &Matrix,
        guard: &Guard,
    ) -> Result<(Reply, Tier), ServeError> {
        let dataset = self.to_dataset(matrix)?;
        let n = dataset.n_rows();
        let mut classes = Vec::with_capacity(n);
        let mut tier = Tier::Full;
        for i in 0..n {
            if guard.try_work(1).is_err() {
                classes.resize(n, self.default_class);
                tier = Tier::MajorityFallback;
                break;
            }
            let class = match model {
                ModelKind::Tree => match &self.tree {
                    Some(t) => t.predict_row(&dataset, i),
                    None => return Err(ServeError::ModelUnavailable("tree")),
                },
                ModelKind::Ensemble => match &self.ensemble {
                    Some(e) => e.predict_row(&dataset, i),
                    None => return Err(ServeError::ModelUnavailable("ensemble")),
                },
                ModelKind::NaiveBayes => match &self.nb {
                    Some(nb) => nb.predict_row(&dataset, i),
                    None => return Err(ServeError::ModelUnavailable("naive_bayes")),
                },
                ModelKind::Knn => unreachable!("knn dispatches to predict_knn"),
            };
            classes.push(class);
        }
        Ok((Reply::Classes(classes), tier))
    }

    /// Scores `rows` by squared distance to the nearest k-means
    /// centroid. Degrades by truncation: on a trip the reply is the
    /// computed prefix (there is no cheaper tier below a single
    /// centroid pass).
    pub fn score(&self, rows: &[Vec<f64>], guard: &Guard) -> Result<(Reply, Tier), ServeError> {
        let Some(kmeans) = &self.kmeans else {
            return Err(ServeError::ModelUnavailable("kmeans"));
        };
        let matrix = self.to_matrix(rows)?;
        if matrix.cols() != kmeans.centroids.cols() {
            return Err(ServeError::Malformed(format!(
                "model fitted on {} dims, got {}",
                kmeans.centroids.cols(),
                matrix.cols()
            )));
        }
        let mut scores = Vec::with_capacity(matrix.rows());
        for r in 0..matrix.rows() {
            if guard.try_work(1).is_err() {
                break;
            }
            scores.push(nearest_sq_dist(&kmeans.centroids, matrix.row(r)));
        }
        Ok((Reply::Scores(scores), Tier::Full))
    }

    /// Recommends up to `k` items for `basket` from the rule set,
    /// charging one work unit per rule scanned; falls back to the
    /// top-support singletons when the budget trips.
    pub fn recommend(
        &self,
        basket: &[u32],
        k: usize,
        guard: &Guard,
    ) -> Result<(Reply, Tier), ServeError> {
        if k == 0 {
            return Err(ServeError::Malformed("k must be >= 1".into()));
        }
        if self.rules.is_empty() && self.top_singletons.is_empty() {
            return Err(ServeError::ModelUnavailable("rules"));
        }
        let mut held: Vec<u32> = basket.to_vec();
        held.sort_unstable();
        held.dedup();
        // item -> (confidence, support); best rule wins.
        let mut candidates: Vec<(u32, f64, f64)> = Vec::new();
        for rule in &self.rules {
            if guard.try_work(1).is_err() {
                return Ok((
                    Reply::Recommendations(self.top_support_recommend(basket, k)),
                    Tier::TopSupportFallback,
                ));
            }
            if !rule
                .antecedent
                .iter()
                .all(|item| held.binary_search(item).is_ok())
            {
                continue;
            }
            for &item in &rule.consequent {
                if held.binary_search(&item).is_ok() {
                    continue;
                }
                match candidates.iter_mut().find(|(i, _, _)| *i == item) {
                    Some(entry) => {
                        if rule.confidence > entry.1
                            || (rule.confidence == entry.1 && rule.support > entry.2)
                        {
                            entry.1 = rule.confidence;
                            entry.2 = rule.support;
                        }
                    }
                    None => candidates.push((item, rule.confidence, rule.support)),
                }
            }
        }
        // Rank: confidence desc, support desc, item asc — fully
        // deterministic for the equivalence and ledger tests.
        candidates.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(b.2.total_cmp(&a.2))
                .then(a.0.cmp(&b.0))
        });
        candidates.truncate(k);
        let recs = candidates
            .into_iter()
            .map(|(item, confidence, _)| Recommendation {
                item,
                score: confidence,
            })
            .collect();
        Ok((Reply::Recommendations(recs), Tier::Full))
    }

    // -- direct fallback entry points (equivalence suite) -------------

    /// The centroid tier, invoked directly: classify each row by the
    /// nearest per-class centroid of the kNN training set. `None` when
    /// no kNN model (hence no centroids) is installed.
    pub fn centroid_predict(&self, rows: &[Vec<f64>]) -> Result<Option<Vec<u32>>, ServeError> {
        let matrix = self.to_matrix(rows)?;
        Ok(self.knn_centroids.as_ref().map(|(centroids, cls)| {
            (0..matrix.rows())
                .map(|r| nearest_class(centroids, cls, matrix.row(r)))
                .collect()
        }))
    }

    /// The top-support tier, invoked directly: the highest-support
    /// frequent singletons the basket does not already hold, up to `k`.
    pub fn top_support_recommend(&self, basket: &[u32], k: usize) -> Vec<Recommendation> {
        self.top_singletons
            .iter()
            .filter(|rec| !basket.contains(&rec.item))
            .take(k)
            .copied()
            .collect()
    }
}

/// Mean vector per class, classes in ascending order. `None` for empty
/// input (mirrors "no model installed").
fn class_centroids(train: &Matrix, labels: &[u32]) -> Option<(Matrix, Vec<u32>)> {
    if train.rows() == 0 || train.rows() != labels.len() {
        return None;
    }
    let mut classes: Vec<u32> = labels.to_vec();
    classes.sort_unstable();
    classes.dedup();
    let mut rows = Vec::with_capacity(classes.len());
    for &class in &classes {
        let mut sum = vec![0.0f64; train.cols()];
        let mut count = 0usize;
        for (r, &label) in labels.iter().enumerate() {
            if label == class {
                for (s, v) in sum.iter_mut().zip(train.row(r)) {
                    *s += v;
                }
                count += 1;
            }
        }
        for s in &mut sum {
            *s /= count as f64;
        }
        rows.push(sum);
    }
    Matrix::from_rows(&rows).ok().map(|m| (m, classes))
}

/// Class of the nearest centroid row (strictly-less keeps the first on
/// ties, matching k-means' own `nearest`).
fn nearest_class(centroids: &Matrix, classes: &[u32], point: &[f64]) -> u32 {
    let mut best = (0usize, f64::INFINITY);
    for i in 0..centroids.rows() {
        let d = sq_dist(centroids.row(i), point);
        if d < best.1 {
            best = (i, d);
        }
    }
    classes[best.0]
}

/// Squared distance to the nearest centroid — same accumulation order
/// as `KMeansModel::score`, so the two are bit-identical.
fn nearest_sq_dist(centroids: &Matrix, point: &[f64]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..centroids.rows() {
        let d = sq_dist(centroids.row(i), point);
        if d < best {
            best = d;
        }
    }
    best
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

// -- demo bundle ------------------------------------------------------

use dm_core::assoc::{mine, Method, MinSupport, RuleGenerator};
use dm_core::bayes::NaiveBayes;
use dm_core::cluster::KMeans;
use dm_core::dataset::{DataError, Labels};
use dm_core::knn::Knn;
use dm_core::synth::{GaussianMixture, QuestConfig, QuestGenerator};
use dm_core::tree::{BaggedTrees, DecisionTreeLearner};

impl ModelSet {
    /// A fully-populated bundle fitted on synthetic data, deterministic
    /// in `seed`: 2-d Gaussian blobs (3 classes) behind every
    /// classifier and the k-means scorer, and a small Quest basket
    /// database behind the recommender. Used by experiment E15, the
    /// chaos suite, and the doc examples.
    pub fn demo(seed: u64) -> Result<Self, DataError> {
        let schema = vec!["x0".to_string(), "x1".to_string()];
        let (points, raw_labels) = GaussianMixture::well_separated(3, 2, 40, 8.0)?.generate(seed);
        let columns = schema
            .iter()
            .enumerate()
            .map(|(c, name)| {
                let values = (0..points.rows()).map(|r| points.row(r)[c]).collect();
                (name.clone(), Column::from_numeric(values))
            })
            .collect();
        let dataset = Dataset::from_columns("serve-demo", columns)?;
        let labels = Labels::from_strs(raw_labels.iter().map(|c| format!("c{c}")));
        let tree = DecisionTreeLearner::new().fit(&dataset, &labels)?;
        let ensemble = BaggedTrees::new(5).with_seed(seed).fit(&dataset, &labels)?;
        let nb = NaiveBayes::new().fit(&dataset, &labels)?;
        let knn = Knn::new(3).fit(&points, &raw_labels)?;
        let kmeans = KMeans::new(3).with_seed(seed).fit_model(&points)?;
        let config = QuestConfig {
            n_transactions: 300,
            avg_txn_len: 8.0,
            avg_pattern_len: 4.0,
            n_patterns: 50,
            n_items: 100,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
        };
        let db = QuestGenerator::new(config, seed)?.generate(seed.wrapping_add(1));
        let mined = mine(&db, MinSupport::Fraction(0.02), Method::Auto)?;
        let mut rules = RuleGenerator::new(0.4).generate(&mined.itemsets)?;
        // Quest at this support yields tens of thousands of rules; a
        // serving bundle that large makes every recommend request scan
        // them all and bloats the artifact file ~1 MB. Keep a
        // deterministic top slice — the recommender ranks by the same
        // key, so the best answers survive the cut.
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.support.total_cmp(&a.support))
                .then_with(|| a.antecedent.cmp(&b.antecedent))
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        rules.truncate(512);
        let singletons = mined.itemsets.singletons_by_support();
        let majority = labels.majority().unwrap_or(0);
        Ok(Self::new(schema)
            .with_default_class(majority)
            .with_tree(tree)
            .with_ensemble(ensemble)
            .with_naive_bayes(nb)
            .with_knn(knn)
            .with_kmeans(kmeans)
            .with_rules(rules, singletons))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_deterministic_in_seed() {
        let a = ModelSet::demo(7).unwrap();
        let b = ModelSet::demo(7).unwrap();
        let g = Guard::unlimited();
        let rows = vec![vec![0.3, -0.1], vec![7.9, 0.4]];
        for kind in [
            ModelKind::Tree,
            ModelKind::Ensemble,
            ModelKind::NaiveBayes,
            ModelKind::Knn,
        ] {
            assert_eq!(
                a.predict(kind, &rows, &g).unwrap(),
                b.predict(kind, &rows, &g).unwrap(),
                "{kind:?}"
            );
        }
        assert_eq!(
            a.recommend(&[1, 2], 5, &g).unwrap(),
            b.recommend(&[1, 2], 5, &g).unwrap()
        );
    }

    #[test]
    fn malformed_rows_are_typed_not_panics() {
        let m = ModelSet::demo(3).unwrap();
        let g = Guard::unlimited();
        for rows in [
            vec![],
            vec![vec![1.0]],
            vec![vec![1.0, 2.0, 3.0]],
            vec![vec![f64::NAN, 0.0]],
        ] {
            assert!(matches!(
                m.predict(ModelKind::Tree, &rows, &g),
                Err(ServeError::Malformed(_))
            ));
        }
        assert!(matches!(
            m.recommend(&[1], 0, &g),
            Err(ServeError::Malformed(_))
        ));
    }

    #[test]
    fn empty_bundle_answers_model_unavailable() {
        let m = ModelSet::new(vec!["a".into()]);
        let g = Guard::unlimited();
        assert_eq!(
            m.predict(ModelKind::Knn, &[vec![1.0]], &g),
            Err(ServeError::ModelUnavailable("knn"))
        );
        assert_eq!(
            m.score(&[vec![1.0]], &g),
            Err(ServeError::ModelUnavailable("kmeans"))
        );
        assert_eq!(
            m.recommend(&[1], 3, &g),
            Err(ServeError::ModelUnavailable("rules"))
        );
    }

    #[test]
    fn score_matches_kmeans_model_score_bit_for_bit() {
        let m = ModelSet::demo(5).unwrap();
        let rows = vec![vec![0.0, 0.0], vec![8.0, 8.0], vec![-3.5, 4.2]];
        let g = Guard::unlimited();
        let (reply, tier) = m.score(&rows, &g).unwrap();
        let direct = m
            .kmeans()
            .unwrap()
            .score(&Matrix::from_rows(&rows).unwrap())
            .unwrap();
        assert_eq!(reply, Reply::Scores(direct));
        assert_eq!(tier, Tier::Full);
    }
}
