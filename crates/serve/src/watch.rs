//! Live watch integration: a [`Server`] evaluates `dm_obs::watch` rules
//! over its own metrics on a caller-driven cadence and (opt-in) *reacts*.
//!
//! The server does not spawn a watch thread — cadence stays with the
//! caller (an ops loop, a test, the `dm watch` CLI) via
//! [`Server::watch_tick`], which keeps every evaluation deterministic
//! under an injected [`Clock`]. Each tick:
//!
//! 1. snapshots the *source* recorder (the one the server records into),
//! 2. runs the [`Watcher`] over it (sliding windows, SLO rules, drift
//!    detectors), emitting `watch.*` metrics through the same recorder,
//! 3. applies the [`WatchPolicy`] reactions:
//!    * **degrade** — while any rule is `Firing`, every subsequent
//!      submission's work budget is capped at
//!      `degrade_max_work_while_firing`, so overload resolves through
//!      the existing truncation tiers (`serve.watch.degrade.engaged` /
//!      `.released` count the edges);
//!    * **refresh on drift** — a `Firing` transition on a drift rule
//!      swaps the model set via [`Server::refresh_artifact`] using the
//!      policy's closure (`serve.watch.refresh.on_drift` counts them).
//!
//! [`Server::alert_status`] exposes the per-rule alert states for a
//! status API without ticking.

use crate::models::ModelSet;
use crate::server::Server;
use dm_core::obs::watch::{AlertState, AlertStatus, RuleKind, WatchReport, Watcher};
use dm_core::obs::InMemoryRecorder;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

/// How a server reacts to its watcher's alerts. Both reactions are
/// opt-in; the default policy only observes (evaluate + expose).
#[derive(Default)]
pub struct WatchPolicy {
    /// While *any* rule is firing, cap each submission's
    /// `Budget::max_work` to this many work units (existing caps are
    /// kept if tighter). `None` disables degradation.
    pub degrade_max_work_while_firing: Option<u64>,
    /// Called through [`Server::refresh_artifact`] whenever a *drift*
    /// rule transitions to `Firing` — e.g. republish a streaming
    /// model's current centroids. `None` disables refresh-on-drift.
    #[allow(clippy::type_complexity)]
    pub refresh_on_drift: Option<Box<dyn Fn(ModelSet) -> ModelSet + Send + Sync>>,
}

impl std::fmt::Debug for WatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchPolicy")
            .field(
                "degrade_max_work_while_firing",
                &self.degrade_max_work_while_firing,
            )
            .field("refresh_on_drift", &self.refresh_on_drift.is_some())
            .finish()
    }
}

/// A watcher attached to a server: the metric source it reads, the
/// rule engine, and the reaction policy.
pub(crate) struct AttachedWatch {
    source: Arc<InMemoryRecorder>,
    watcher: Watcher,
    policy: WatchPolicy,
}

impl Server {
    /// Attaches a watcher to this server. `source` must be the recorder
    /// the server (and anything else being watched, e.g. a streaming
    /// engine) records into; the watcher reads snapshots of it each
    /// [`Server::watch_tick`] and writes its own `watch.*` metrics back
    /// through the server's recorder. Replaces any previous watcher and
    /// releases a previously engaged degrade cap.
    pub fn install_watch(
        &self,
        source: Arc<InMemoryRecorder>,
        watcher: Watcher,
        policy: WatchPolicy,
    ) {
        let mut slot = self.watch.lock().unwrap_or_else(PoisonError::into_inner);
        self.degrade_cap.store(0, Ordering::SeqCst);
        *slot = Some(AttachedWatch {
            source,
            watcher,
            policy,
        });
    }

    /// Runs one watch evaluation: snapshot the source, tick the rule
    /// engine, apply policy reactions. Returns `None` when no watcher
    /// is installed. Call this on whatever cadence the deployment
    /// wants; determinism is inherited from the watcher's [`Clock`].
    ///
    /// [`Clock`]: dm_core::obs::watch::Clock
    pub fn watch_tick(&self) -> Option<WatchReport> {
        let mut slot = self.watch.lock().unwrap_or_else(PoisonError::into_inner);
        let attached = slot.as_mut()?;
        let snap = attached.source.snapshot();
        let obs = self.shared.obs();
        let transitions = attached.watcher.tick(&snap, &obs);

        for t in &transitions {
            if t.to == AlertState::Firing {
                // Pin the traces overlapping this rule's firing edge:
                // whatever the tail sampler holds right now is the
                // request mix that pushed the rule over, so protect it
                // from eviction and stamp it with the rule name.
                if let Some(tracer) = &self.shared.tracer {
                    tracer.pin_recent(&t.rule, &obs);
                }
            }
            if t.kind == RuleKind::Drift && t.to == AlertState::Firing {
                if let Some(refresh) = &attached.policy.refresh_on_drift {
                    self.refresh_artifact(refresh.as_ref());
                    obs.counter("serve.watch.refresh.on_drift", 1);
                }
            }
        }

        if let Some(cap) = attached.policy.degrade_max_work_while_firing {
            let firing = attached.watcher.firing() > 0;
            let prev = self
                .degrade_cap
                .swap(if firing { cap } else { 0 }, Ordering::SeqCst);
            if prev == 0 && firing {
                obs.counter("serve.watch.degrade.engaged", 1);
            } else if prev != 0 && !firing {
                obs.counter("serve.watch.degrade.released", 1);
            }
        }

        Some(WatchReport {
            transitions,
            statuses: attached.watcher.statuses(),
        })
    }

    /// Current per-rule alert states (empty when no watcher is
    /// installed). A pure read for status endpoints: does not evaluate
    /// rules or advance any state.
    pub fn alert_status(&self) -> Vec<AlertStatus> {
        self.watch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|a| a.watcher.statuses())
            .unwrap_or_default()
    }

    /// The work-unit cap currently applied by the degradation reaction
    /// (`None` when disengaged).
    pub fn degrade_cap(&self) -> Option<u64> {
        match self.degrade_cap.load(Ordering::SeqCst) {
            0 => None,
            cap => Some(cap),
        }
    }
}
