//! Fitted-model artifacts: a versioned, dependency-free JSON bundle a
//! server can be cold-started from.
//!
//! What round-trips: the serving schema, the default (majority) class,
//! k-means centroids, the kNN model (training matrix + labels + `k` —
//! reloading refits the index, which is deterministic), the decision
//! tree (full node array, revalidated structurally by
//! `DecisionTree::from_parts` so a corrupt artifact cannot produce a
//! tree that panics or loops), the mined rules, and the top-support
//! singleton vocabulary. Ensembles and naive Bayes deliberately do
//! *not* serialize — they refit in-process; a loaded bundle answers
//! their endpoints with the typed `ModelUnavailable`.
//!
//! Corruption is a first-class input, not an assumed-away case: every
//! load failure is a typed [`ArtifactError`] naming what broke, and
//! the chaos suite feeds this loader truncated, bit-flipped, and
//! wrong-schema bytes to prove it. Floats are written with Rust's
//! shortest-round-trip formatting, so save → load → save is
//! byte-stable.

use crate::api::Recommendation;
use crate::models::ModelSet;
use dm_core::assoc::Rule;
use dm_core::cluster::KMeansModel;
use dm_core::dataset::Matrix;
use dm_core::knn::Knn;
use dm_core::obs::json::{parse, Json};
use dm_core::tree::{DecisionTree, Node, SplitKind};
use std::fmt;
use std::fmt::Write as _;

/// Version of the artifact bundle schema. Bump on any key change and
/// document it in DESIGN.md ("Serving").
pub const ARTIFACT_SCHEMA: u32 = 1;

/// Why an artifact bundle failed to load — always typed and readable,
/// never a panic, whatever the input bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The bytes are not valid JSON (message + byte offset).
    Json(String),
    /// Valid JSON, but not a valid bundle; the string names the
    /// offending key or structural rule.
    Shape(String),
    /// The bundle's `artifact_schema` is newer than this build reads.
    SchemaTooNew(u64),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "artifact is not valid JSON: {e}"),
            Self::Shape(what) => write!(f, "artifact malformed: {what}"),
            Self::SchemaTooNew(v) => write!(
                f,
                "artifact_schema {v} is newer than this build reads (<= {ARTIFACT_SCHEMA})"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

// -- save -------------------------------------------------------------

/// Serializes the bundle's artifact-serializable parts to JSON.
pub fn save_artifacts(models: &ModelSet) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"artifact_schema\": {ARTIFACT_SCHEMA},");
    let _ = write!(out, "  \"schema\": [");
    for (i, name) in models.schema().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", jstr(name));
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"default_class\": {},", models.default_class());
    if let Some(kmeans) = models.kmeans() {
        let _ = writeln!(
            out,
            "  \"kmeans\": {{\"centroids\": {}}},",
            matrix_json(&kmeans.centroids)
        );
    }
    if let Some(knn) = models.knn() {
        let _ = writeln!(
            out,
            "  \"knn\": {{\"k\": {}, \"train\": {}, \"labels\": {}}},",
            knn.k(),
            matrix_json(knn.train()),
            ints_json(knn.labels())
        );
    }
    if let Some(tree) = models.tree() {
        let _ = writeln!(out, "  \"tree\": {},", tree_json(tree));
    }
    out.push_str("  \"rules\": [");
    for (i, rule) in models.rules().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"antecedent\": {}, \"consequent\": {}, \"support\": {}, \"confidence\": {}, \"lift\": {}}}",
            ints_json(&rule.antecedent),
            ints_json(&rule.consequent),
            rule.support,
            rule.confidence,
            rule.lift
        );
    }
    out.push_str("],\n");
    out.push_str("  \"singletons\": [");
    for (i, rec) in models.top_singletons().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{}, {}]", rec.item, rec.score as u64);
    }
    out.push_str("]\n}\n");
    out
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn matrix_json(m: &Matrix) -> String {
    let mut out = String::from("[");
    for r in 0..m.rows() {
        if r > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (c, v) in m.row(r).iter().enumerate() {
            if c > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push(']');
    out
}

fn ints_json(values: &[u32]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

fn counts_json(values: &[usize]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

fn tree_json(tree: &DecisionTree) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"root\": {}, \"n_classes\": {}, \"attr_names\": [",
        tree.root_id(),
        tree.n_classes()
    );
    for (i, name) in tree.attr_names().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", jstr(name));
    }
    out.push_str("], \"nodes\": [");
    for (i, node) in tree.nodes().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match node {
            Node::Leaf { class, counts } => {
                let _ = write!(
                    out,
                    "{{\"leaf\": {{\"class\": {class}, \"counts\": {}}}}}",
                    counts_json(counts)
                );
            }
            Node::Split {
                attr,
                spec,
                children,
                default_child,
                majority,
                counts,
            } => {
                let spec_json = match spec {
                    SplitKind::NumericThreshold { threshold } => {
                        format!("{{\"kind\": \"num\", \"threshold\": {threshold}}}")
                    }
                    SplitKind::CategoricalMultiway { categories } => {
                        format!(
                            "{{\"kind\": \"multi\", \"categories\": {}}}",
                            ints_json(categories)
                        )
                    }
                    SplitKind::CategoricalEquals { category } => {
                        format!("{{\"kind\": \"eq\", \"category\": {category}}}")
                    }
                };
                let _ = write!(
                    out,
                    "{{\"split\": {{\"attr\": {attr}, \"spec\": {spec_json}, \
                     \"children\": {}, \"default_child\": {default_child}, \
                     \"majority\": {majority}, \"counts\": {}}}}}",
                    counts_json(children),
                    counts_json(counts)
                );
            }
        }
    }
    out.push_str("]}");
    out
}

// -- load -------------------------------------------------------------

type Load<T> = Result<T, ArtifactError>;

fn shape<T>(msg: impl Into<String>) -> Load<T> {
    Err(ArtifactError::Shape(msg.into()))
}

fn get_u64(doc: &Json, key: &str) -> Load<u64> {
    doc.get(key)
        .and_then(Json::as_u64)
        .map_or_else(|| shape(format!("missing or non-integer `{key}`")), Ok)
}

fn get_f64(doc: &Json, key: &str) -> Load<f64> {
    let v = doc
        .get(key)
        .and_then(Json::as_f64)
        .map_or_else(|| shape(format!("missing or non-number `{key}`")), Ok)?;
    if !v.is_finite() {
        return shape(format!("`{key}` is not finite"));
    }
    Ok(v)
}

fn get_arr<'a>(doc: &'a Json, key: &str) -> Load<&'a [Json]> {
    doc.get(key)
        .and_then(Json::as_arr)
        .map_or_else(|| shape(format!("missing or non-array `{key}`")), Ok)
}

fn floats(arr: &[Json], what: &str) -> Load<Vec<f64>> {
    arr.iter()
        .map(|v| {
            let f = v
                .as_f64()
                .map_or_else(|| shape(format!("non-number in {what}")), Ok)?;
            if !f.is_finite() {
                return shape(format!("non-finite number in {what}"));
            }
            Ok(f)
        })
        .collect()
}

fn u32s(arr: &[Json], what: &str) -> Load<Vec<u32>> {
    arr.iter()
        .map(|v| {
            v.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .map_or_else(|| shape(format!("non-u32 in {what}")), Ok)
        })
        .collect()
}

fn usizes(arr: &[Json], what: &str) -> Load<Vec<usize>> {
    arr.iter()
        .map(|v| {
            v.as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .map_or_else(|| shape(format!("non-integer in {what}")), Ok)
        })
        .collect()
}

fn load_matrix(doc: &Json, key: &str, what: &str) -> Load<Matrix> {
    let rows_json = get_arr(doc, key)?;
    let mut rows = Vec::with_capacity(rows_json.len());
    for row in rows_json {
        let row = row
            .as_arr()
            .map_or_else(|| shape(format!("non-array row in {what}")), Ok)?;
        rows.push(floats(row, what)?);
    }
    Matrix::from_rows(&rows).map_err(|e| ArtifactError::Shape(format!("{what}: {e}")))
}

/// Deserializes a bundle saved by [`save_artifacts`]. Every structural
/// defect — invalid JSON, wrong schema version, missing keys, a tree
/// with dangling children or cycles, dimension mismatches — comes back
/// as a typed [`ArtifactError`].
pub fn load_artifacts(text: &str) -> Load<ModelSet> {
    let doc = parse(text).map_err(|e| ArtifactError::Json(e.to_string()))?;
    let version = get_u64(&doc, "artifact_schema")?;
    if version > u64::from(ARTIFACT_SCHEMA) {
        return Err(ArtifactError::SchemaTooNew(version));
    }
    let schema: Vec<String> = get_arr(&doc, "schema")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .map_or_else(|| shape("non-string in `schema`"), Ok)
        })
        .collect::<Load<_>>()?;
    if schema.is_empty() {
        return shape("`schema` must name at least one feature");
    }
    let default_class = u32::try_from(get_u64(&doc, "default_class")?)
        .map_err(|_| ArtifactError::Shape("`default_class` exceeds u32".into()))?;
    let mut models = ModelSet::new(schema.clone()).with_default_class(default_class);

    if let Some(kmeans_doc) = doc.get("kmeans") {
        let centroids = load_matrix(kmeans_doc, "centroids", "kmeans centroids")?;
        if centroids.cols() != schema.len() {
            return shape(format!(
                "kmeans centroids have {} dims, schema has {}",
                centroids.cols(),
                schema.len()
            ));
        }
        let model = KMeansModel::from_centroids(centroids)
            .map_err(|e| ArtifactError::Shape(format!("kmeans: {e}")))?;
        models = models.with_kmeans(model);
    }

    if let Some(knn_doc) = doc.get("knn") {
        let k = usize::try_from(get_u64(knn_doc, "k")?)
            .map_err(|_| ArtifactError::Shape("knn `k` out of range".into()))?;
        let train = load_matrix(knn_doc, "train", "knn train")?;
        if train.cols() != schema.len() {
            return shape(format!(
                "knn train has {} dims, schema has {}",
                train.cols(),
                schema.len()
            ));
        }
        let labels = u32s(get_arr(knn_doc, "labels")?, "knn labels")?;
        let model = Knn::new(k)
            .fit(&train, &labels)
            .map_err(|e| ArtifactError::Shape(format!("knn refit: {e}")))?;
        models = models.with_knn(model);
    }

    if let Some(tree_doc) = doc.get("tree") {
        models = models.with_tree(load_tree(tree_doc)?);
    }

    let mut rules = Vec::new();
    for rule_doc in get_arr(&doc, "rules")? {
        rules.push(Rule {
            antecedent: u32s(get_arr(rule_doc, "antecedent")?, "rule antecedent")?,
            consequent: u32s(get_arr(rule_doc, "consequent")?, "rule consequent")?,
            support: get_f64(rule_doc, "support")?,
            confidence: get_f64(rule_doc, "confidence")?,
            lift: get_f64(rule_doc, "lift")?,
        });
    }
    let mut singletons = Vec::new();
    for pair in get_arr(&doc, "singletons")? {
        let pair = pair
            .as_arr()
            .map_or_else(|| shape("non-array entry in `singletons`"), Ok)?;
        if pair.len() != 2 {
            return shape("`singletons` entries must be [item, count]");
        }
        let item = pair[0]
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .map_or_else(|| shape("non-u32 item in `singletons`"), Ok)?;
        let count = pair[1]
            .as_u64()
            .map_or_else(|| shape("non-integer count in `singletons`"), Ok)?;
        singletons.push((item, count as usize));
    }
    Ok(models.with_rules(rules, singletons))
}

fn load_tree(doc: &Json) -> Load<DecisionTree> {
    let root = usize::try_from(get_u64(doc, "root")?)
        .map_err(|_| ArtifactError::Shape("tree `root` out of range".into()))?;
    let n_classes = usize::try_from(get_u64(doc, "n_classes")?)
        .map_err(|_| ArtifactError::Shape("tree `n_classes` out of range".into()))?;
    let attr_names: Vec<String> = get_arr(doc, "attr_names")?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .map_or_else(|| shape("non-string in tree `attr_names`"), Ok)
        })
        .collect::<Load<_>>()?;
    let mut nodes = Vec::new();
    for node_doc in get_arr(doc, "nodes")? {
        if let Some(leaf) = node_doc.get("leaf") {
            let class = u32::try_from(get_u64(leaf, "class")?)
                .map_err(|_| ArtifactError::Shape("leaf `class` exceeds u32".into()))?;
            let counts = usizes(get_arr(leaf, "counts")?, "leaf counts")?;
            nodes.push(Node::Leaf { class, counts });
        } else if let Some(split) = node_doc.get("split") {
            let attr = usize::try_from(get_u64(split, "attr")?)
                .map_err(|_| ArtifactError::Shape("split `attr` out of range".into()))?;
            let spec_doc = split
                .get("spec")
                .map_or_else(|| shape("split missing `spec`"), Ok)?;
            let kind = spec_doc
                .get("kind")
                .and_then(Json::as_str)
                .map_or_else(|| shape("split spec missing `kind`"), Ok)?;
            let spec = match kind {
                "num" => SplitKind::NumericThreshold {
                    threshold: get_f64(spec_doc, "threshold")?,
                },
                "multi" => SplitKind::CategoricalMultiway {
                    categories: u32s(get_arr(spec_doc, "categories")?, "spec categories")?,
                },
                "eq" => SplitKind::CategoricalEquals {
                    category: u32::try_from(get_u64(spec_doc, "category")?)
                        .map_err(|_| ArtifactError::Shape("spec `category` exceeds u32".into()))?,
                },
                other => return shape(format!("unknown split kind `{other}`")),
            };
            let children = usizes(get_arr(split, "children")?, "split children")?;
            let default_child = usize::try_from(get_u64(split, "default_child")?)
                .map_err(|_| ArtifactError::Shape("split `default_child` out of range".into()))?;
            let majority = u32::try_from(get_u64(split, "majority")?)
                .map_err(|_| ArtifactError::Shape("split `majority` exceeds u32".into()))?;
            let counts = usizes(get_arr(split, "counts")?, "split counts")?;
            nodes.push(Node::Split {
                attr,
                spec,
                children,
                default_child,
                majority,
                counts,
            });
        } else {
            return shape("tree node is neither `leaf` nor `split`");
        }
    }
    DecisionTree::from_parts(nodes, root, n_classes, attr_names)
        .map_err(|e| ArtifactError::Shape(e.to_string()))
}

/// Round-trip convenience: loads from a file path (the `dm`-adjacent
/// tooling and experiments use string paths throughout).
pub fn load_artifacts_file(path: &std::path::Path) -> Load<ModelSet> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArtifactError::Json(format!("cannot read {}: {e}", path.display())))?;
    load_artifacts(&text)
}

/// The singleton `Recommendation` list re-expressed as `(item, count)`
/// pairs (what [`ModelSet::with_rules`] takes) — used by round-trip
/// tests.
pub fn singleton_pairs(recs: &[Recommendation]) -> Vec<(u32, usize)> {
    recs.iter().map(|r| (r.item, r.score as usize)).collect()
}
