//! The request/response vocabulary: every interaction with the server
//! is a [`Request`] in and a [`ServeResult`] out — a typed response
//! carrying its degradation [`Tier`] and the guard's
//! `Complete`/`Truncated` status, or a typed [`ServeError`]. There is
//! deliberately no untyped escape hatch.

use dm_core::guard::RunStatus;
use std::fmt;

/// Which fitted classifier a predict request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The single decision tree.
    Tree,
    /// The bagged-trees ensemble.
    Ensemble,
    /// Naive Bayes.
    NaiveBayes,
    /// k-nearest neighbours.
    Knn,
}

impl ModelKind {
    /// Stable lowercase label (metric names, artifact keys).
    pub fn label(self) -> &'static str {
        match self {
            Self::Tree => "tree",
            Self::Ensemble => "ensemble",
            Self::NaiveBayes => "naive_bayes",
            Self::Knn => "knn",
        }
    }
}

/// One unit of work submitted to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify `rows` (numeric feature vectors matching the serving
    /// schema) with the chosen model.
    Predict {
        /// Which classifier answers.
        model: ModelKind,
        /// Feature rows; every row must match the schema width.
        rows: Vec<Vec<f64>>,
    },
    /// Score `rows` by squared distance to the nearest k-means
    /// centroid (an affinity/anomaly score; higher = farther out).
    Score {
        /// Feature rows; every row must match the schema width.
        rows: Vec<Vec<f64>>,
    },
    /// Recommend up to `k` items to a user holding `basket`, from the
    /// mined association rules ("users who bought X…").
    Recommend {
        /// Item ids the user already holds.
        basket: Vec<u32>,
        /// Maximum number of recommendations (must be >= 1).
        k: usize,
    },
}

impl Request {
    /// The endpoint this request hits (metric labelling).
    pub fn endpoint(&self) -> Endpoint {
        match self {
            Self::Predict { .. } => Endpoint::Predict,
            Self::Score { .. } => Endpoint::Score,
            Self::Recommend { .. } => Endpoint::Recommend,
        }
    }
}

/// The three serving endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Classification.
    Predict,
    /// Centroid-distance scoring.
    Score,
    /// Rule-based recommendation.
    Recommend,
}

impl Endpoint {
    /// Stable lowercase label used in metric names
    /// (`serve.latency.<label>_ns`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Predict => "predict",
            Self::Score => "score",
            Self::Recommend => "recommend",
        }
    }
}

/// One recommended item with its score (rule confidence on the full
/// tier, support count on the top-support fallback tier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// Recommended item id.
    pub item: u32,
    /// Ranking score; higher is better. Comparable only within one
    /// response (the fallback tier scores on a different scale).
    pub score: f64,
}

/// The payload of a successful (possibly degraded) response.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Predicted class codes, one per requested row.
    Classes(Vec<u32>),
    /// Nearest-centroid squared distances. May be a *prefix* of the
    /// requested rows when the budget tripped mid-batch (the response
    /// status says so).
    Scores(Vec<f64>),
    /// Ranked recommendations, best first.
    Recommendations(Vec<Recommendation>),
}

/// Which quality tier produced a response. Anything other than
/// [`Tier::Full`] only ever appears on a `Truncated` response — the
/// server degrades when (and only when) a budget trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The primary model answered within budget.
    Full,
    /// kNN tripped its budget; remaining rows were classified by
    /// nearest per-class centroid.
    CentroidFallback,
    /// A tree/ensemble/NB prediction tripped; remaining rows got the
    /// training-majority class.
    MajorityFallback,
    /// Rule scanning tripped; recommendations fell back to the
    /// top-support frequent singletons.
    TopSupportFallback,
}

impl Tier {
    /// Stable lowercase label (metric names: `serve.degraded.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::CentroidFallback => "centroid",
            Self::MajorityFallback => "majority",
            Self::TopSupportFallback => "top_support",
        }
    }
}

/// A successful response: the reply plus an honest account of how it
/// was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The answer.
    pub reply: Reply,
    /// `Complete`, or `Truncated(reason)` when the request's budget
    /// tripped (in which case `tier` and/or reply length say how the
    /// server coped).
    pub status: RunStatus,
    /// Which quality tier answered.
    pub tier: Tier,
}

/// Every way the server declines or fails a request — all typed, all
/// cheap to produce, none fatal to the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full; the request was shed at submit
    /// time. `depth` is the queue depth observed (== capacity).
    Overloaded {
        /// Queue depth at rejection.
        depth: usize,
    },
    /// The server is shutting down; queued requests are answered with
    /// this rather than dropped.
    ShuttingDown,
    /// The request failed validation (wrong row width, non-finite
    /// feature, `k == 0`, empty batch). The string is human-readable.
    Malformed(String),
    /// No fitted model of the requested kind is installed.
    ModelUnavailable(&'static str),
    /// The request panicked inside a worker; the worker was recycled
    /// and the panic did not take down the process.
    WorkerPanicked,
    /// The client's own wait on the [`crate::Ticket`] timed out (the
    /// server may still complete the request; the slot is simply
    /// abandoned).
    ResponseTimeout,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { depth } => {
                write!(f, "overloaded: admission queue full at depth {depth}")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::Malformed(why) => write!(f, "malformed request: {why}"),
            Self::ModelUnavailable(kind) => write!(f, "no fitted `{kind}` model installed"),
            Self::WorkerPanicked => write!(f, "request panicked in worker (worker recycled)"),
            Self::ResponseTimeout => write!(f, "timed out waiting for the response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What a [`crate::Ticket`] resolves to.
pub type ServeResult = Result<ServeResponse, ServeError>;
