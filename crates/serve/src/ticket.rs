//! The response hand-off: a one-shot slot the worker fills and the
//! client waits on. Delivery **never blocks** — a slow or stalled
//! client (one that abandons its [`Ticket`] or never calls
//! [`Ticket::wait`]) costs the server one `Arc` store and a notify,
//! nothing more. That property is what makes stalled-client chaos a
//! non-event in `tests/chaos.rs`.

use crate::api::{ServeError, ServeResult};
use dm_core::obs::TraceId;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Slot {
    result: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

/// The client's half: resolves to the request's [`ServeResult`].
pub struct Ticket {
    slot: Arc<Slot>,
    trace_id: Option<TraceId>,
}

/// The server's half: fills the slot exactly once (first write wins).
pub(crate) struct Responder {
    slot: Arc<Slot>,
}

/// Creates a connected client/server pair for one request. `trace_id`
/// is the request's minted trace id when the server runs with tracing
/// enabled — the client-facing handle to `dm trace show <id>`.
pub(crate) fn ticket_pair(trace_id: Option<TraceId>) -> (Ticket, Responder) {
    let slot = Arc::new(Slot {
        result: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        Ticket {
            slot: Arc::clone(&slot),
            trace_id,
        },
        Responder { slot },
    )
}

impl Responder {
    /// Delivers the result. Never blocks; a second delivery (possible
    /// only through a bug) is ignored so the first answer stands.
    pub(crate) fn deliver(&self, result: ServeResult) {
        let mut held = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if held.is_none() {
            *held = Some(result);
        }
        drop(held);
        self.slot.ready.notify_all();
    }
}

impl Ticket {
    /// The request's trace id, when the server minted one (tracing
    /// enabled). Stable across the whole lifecycle — valid to look up
    /// even after the ticket resolves.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace_id
    }

    /// Blocks until the response arrives or `timeout` elapses
    /// ([`ServeError::ResponseTimeout`]). Consuming `self` makes the
    /// one-shot contract explicit: one ticket, one answer.
    pub fn wait(self, timeout: Duration) -> ServeResult {
        let deadline = Instant::now() + timeout;
        let mut held = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = held.take() {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::ResponseTimeout);
            }
            let (guard, _) = self
                .slot
                .ready
                .wait_timeout(held, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            held = guard;
        }
    }

    /// Non-blocking probe; `None` while the request is still in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ServeError;

    #[test]
    fn wait_times_out_without_delivery() {
        let (ticket, _responder) = ticket_pair(None);
        assert_eq!(
            ticket.wait(Duration::from_millis(5)),
            Err(ServeError::ResponseTimeout)
        );
    }

    #[test]
    fn delivery_resolves_a_waiting_ticket() {
        let (ticket, responder) = ticket_pair(None);
        let handle = std::thread::spawn(move || ticket.wait(Duration::from_secs(5)));
        responder.deliver(Err(ServeError::ShuttingDown));
        assert_eq!(handle.join().unwrap(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn first_delivery_wins() {
        let (ticket, responder) = ticket_pair(None);
        responder.deliver(Err(ServeError::WorkerPanicked));
        responder.deliver(Err(ServeError::ShuttingDown));
        assert_eq!(
            ticket.wait(Duration::from_millis(5)),
            Err(ServeError::WorkerPanicked)
        );
    }

    #[test]
    fn delivery_to_an_abandoned_ticket_does_not_block_or_panic() {
        let (ticket, responder) = ticket_pair(None);
        drop(ticket);
        responder.deliver(Err(ServeError::ShuttingDown));
    }
}
