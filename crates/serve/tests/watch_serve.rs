//! End-to-end watch integration: a server evaluating `dm_obs::watch`
//! rules over its own recorder reacts the way the policy says — an
//! overload alert engages (and later releases) the degradation cap,
//! and a concept-drift alert republishes the model artifact. Every
//! tick runs on a `ManualClock`, so each test is a deterministic
//! transition script, not a timing race.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::cluster::KMeansModel;
use dm_core::dataset::Matrix;
use dm_core::obs::watch::{
    AlertState, Condition, DetectorSpec, ManualClock, RuleKind, RuleSet, SloRule, Watcher,
};
use dm_core::obs::{InMemoryRecorder, Obs, Recorder};
use dm_serve::{ModelSet, Request, ServeConfig, ServeError, Server, WatchPolicy};
use std::sync::Arc;

fn predict_req() -> Request {
    Request::Predict {
        model: dm_serve::ModelKind::Knn,
        rows: vec![vec![0.1, 0.2]],
    }
}

/// Overload scenario: a zero-worker, capacity-1 server sheds load, the
/// shed-rate rule walks Ok → Pending → Firing (engaging the work cap),
/// then — once the window slides past the burst — Resolved → Ok
/// (releasing it).
#[test]
fn shed_rate_alert_engages_and_releases_degrade_cap() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let config = ServeConfig {
        workers: 0,
        queue_capacity: 1,
        default_deadline: None,
        trace: None,
    };
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        config,
        recorder.clone() as Arc<dyn Recorder>,
    );

    let clock = Arc::new(ManualClock::new(0));
    let rule = SloRule::new(
        "shed-rate",
        Condition::RatioAbove {
            numerator: "serve.shed.queue_full".into(),
            denominators: vec!["serve.req.admitted".into(), "serve.shed.queue_full".into()],
            max: 0.5,
        },
    )
    .for_ms(100)
    .clear_for_ms(100);
    let watcher = Watcher::new(RuleSet::new(vec![rule]), 300, clock.clone());
    server.install_watch(
        recorder.clone(),
        watcher,
        WatchPolicy {
            degrade_max_work_while_firing: Some(64),
            refresh_on_drift: None,
        },
    );

    // Baseline tick before any traffic: nothing fires.
    let report = server.watch_tick().unwrap();
    assert!(report.transitions.is_empty());
    assert_eq!(server.degrade_cap(), None);

    // One admit, three sheds: shed rate 3/4 > 0.5.
    let _held = server.submit(predict_req()).unwrap();
    for _ in 0..3 {
        match server.submit(predict_req()) {
            Err(ServeError::Overloaded { .. }) => {}
            Err(other) => panic!("expected shed, got {other:?}"),
            Ok(_) => panic!("expected shed, got an admitted ticket"),
        }
    }

    clock.advance(100); // t=100: breach observed -> Pending
    let report = server.watch_tick().unwrap();
    assert_eq!(report.transitions.len(), 1);
    assert_eq!(report.transitions[0].to, AlertState::Pending);
    assert_eq!(server.degrade_cap(), None, "pending must not degrade");

    clock.advance(100); // t=200: held for for_ms -> Firing
    let report = server.watch_tick().unwrap();
    assert_eq!(report.transitions.len(), 1);
    assert_eq!(report.transitions[0].to, AlertState::Firing);
    assert_eq!(server.degrade_cap(), Some(64), "firing engages the cap");
    let status = server.alert_status();
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].rule, "shed-rate");
    assert_eq!(status[0].state, AlertState::Firing);

    clock.advance(100); // t=300: burst still inside the window
    let report = server.watch_tick().unwrap();
    assert!(report.transitions.is_empty());
    assert_eq!(server.degrade_cap(), Some(64));

    clock.advance(100); // t=400: window slid past the burst; first clean tick
    let report = server.watch_tick().unwrap();
    assert!(report.transitions.is_empty(), "hysteresis holds the alert");
    assert_eq!(server.degrade_cap(), Some(64));

    clock.advance(100); // t=500: clean for clear_for_ms -> Resolved, cap released
    let report = server.watch_tick().unwrap();
    assert_eq!(report.transitions.len(), 1);
    assert_eq!(report.transitions[0].from, AlertState::Firing);
    assert_eq!(report.transitions[0].to, AlertState::Resolved);
    assert_eq!(server.degrade_cap(), None, "resolve releases the cap");

    clock.advance(100); // t=600: Resolved -> Ok
    let report = server.watch_tick().unwrap();
    assert_eq!(report.transitions.len(), 1);
    assert_eq!(report.transitions[0].to, AlertState::Ok);

    let snap = recorder.snapshot();
    assert_eq!(snap.counters.get("serve.watch.degrade.engaged"), Some(&1));
    assert_eq!(snap.counters.get("serve.watch.degrade.released"), Some(&1));
    assert!(snap.counters.get("watch.alert.transitions").copied() >= Some(4));

    let _ = server.shutdown();
}

/// Drift scenario: a streaming gauge shifts distribution, the
/// Page–Hinkley rule fires, and the policy's refresh closure
/// republishes the kmeans artifact through `refresh_artifact`.
#[test]
fn drift_alert_triggers_artifact_refresh() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        ServeConfig::default(),
        recorder.clone() as Arc<dyn Recorder>,
    );

    let replacement =
        KMeansModel::from_centroids(Matrix::from_vec(vec![42.0, 42.0], 1, 2).unwrap()).unwrap();
    let refreshed = replacement.clone();

    let clock = Arc::new(ManualClock::new(0));
    let rule = SloRule::new(
        "inertia-drift",
        Condition::Drift {
            metric: "stream.kmeans.inertia".into(),
            detector: DetectorSpec::PageHinkley {
                delta: 0.05,
                lambda: 5.0,
            },
            hold_ms: None,
        },
    );
    let watcher = Watcher::new(RuleSet::new(vec![rule]), 1_000, clock.clone());
    server.install_watch(
        recorder.clone(),
        watcher,
        WatchPolicy {
            degrade_max_work_while_firing: None,
            refresh_on_drift: Some(Box::new(move |m| m.with_kmeans(refreshed.clone()))),
        },
    );

    let obs = Obs::new(&*recorder);
    let mut fired = false;
    // Flat regime: inertia hovers at 1.0; nothing may fire.
    for _ in 0..30 {
        obs.gauge("stream.kmeans.inertia", 1.0);
        clock.advance(100);
        let report = server.watch_tick().unwrap();
        assert!(report.transitions.is_empty(), "no drift in the flat regime");
    }
    // Shifted regime: inertia jumps to 8.0; the detector must fire
    // within a few samples.
    for _ in 0..20 {
        obs.gauge("stream.kmeans.inertia", 8.0);
        clock.advance(100);
        let report = server.watch_tick().unwrap();
        if report
            .transitions
            .iter()
            .any(|t| t.kind == RuleKind::Drift && t.to == AlertState::Firing)
        {
            fired = true;
            break;
        }
    }
    assert!(fired, "Page-Hinkley never fired on an 8x inertia shift");

    let served = server.models();
    assert_eq!(
        served.kmeans().unwrap().centroids.as_slice(),
        replacement.centroids.as_slice(),
        "firing drift alert must republish the artifact"
    );
    let snap = recorder.snapshot();
    assert_eq!(snap.counters.get("serve.watch.refresh.on_drift"), Some(&1));
    assert_eq!(snap.counters.get("serve.artifact.refreshed"), Some(&1));
    assert!(snap.counters.get("watch.drift.detections").copied() >= Some(1));

    let _ = server.shutdown();
}

/// Without an installed watcher the hooks are inert: ticking is a
/// no-op, the status API is empty, no cap is applied.
#[test]
fn watch_hooks_are_inert_until_installed() {
    let server = Server::start(ModelSet::demo(7).unwrap(), ServeConfig::default());
    assert!(server.watch_tick().is_none());
    assert!(server.alert_status().is_empty());
    assert_eq!(server.degrade_cap(), None);
    let _ = server.shutdown();
}
