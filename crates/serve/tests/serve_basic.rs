//! End-to-end serving behaviour under normal operation: every endpoint
//! answers on the full tier, admission is bounded with typed sheds,
//! shutdown answers rather than drops, and every metric the server
//! emits follows the workspace naming convention.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::guard::{Budget, CancelToken, RunStatus};
use dm_core::obs::InMemoryRecorder;
use dm_serve::{ModelKind, ModelSet, Reply, Request, ServeConfig, ServeError, Server, Tier};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(10);

fn demo_server(workers: usize, capacity: usize) -> (Server, Arc<InMemoryRecorder>) {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        ServeConfig {
            workers,
            queue_capacity: capacity,
            default_deadline: Some(Duration::from_secs(5)),
            trace: None,
        },
        rec.clone(),
    );
    (server, rec)
}

#[test]
fn every_endpoint_serves_full_tier_within_budget() {
    let (server, rec) = demo_server(2, 16);
    let rows = vec![vec![0.1, 0.2], vec![8.0, 0.1]];
    for kind in [
        ModelKind::Tree,
        ModelKind::Ensemble,
        ModelKind::NaiveBayes,
        ModelKind::Knn,
    ] {
        let response = server
            .submit(Request::Predict {
                model: kind,
                rows: rows.clone(),
            })
            .unwrap()
            .wait(WAIT)
            .unwrap();
        assert_eq!(response.status, RunStatus::Complete, "{kind:?}");
        assert_eq!(response.tier, Tier::Full, "{kind:?}");
        match response.reply {
            Reply::Classes(classes) => assert_eq!(classes.len(), 2, "{kind:?}"),
            other => panic!("{kind:?}: unexpected reply {other:?}"),
        }
    }
    let response = server
        .submit(Request::Score { rows: rows.clone() })
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert_eq!(response.status, RunStatus::Complete);
    match response.reply {
        Reply::Scores(scores) => {
            assert_eq!(scores.len(), 2);
            assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
        }
        other => panic!("unexpected reply {other:?}"),
    }
    let response = server
        .submit(Request::Recommend {
            basket: vec![1, 2, 3],
            k: 5,
        })
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert_eq!(response.status, RunStatus::Complete);
    assert_eq!(response.tier, Tier::Full);
    server.shutdown();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("serve.req.admitted"), Some(6));
    assert_eq!(snap.counter("serve.resp.complete"), Some(6));
    assert!(snap.counter("serve.resp.truncated").is_none());
}

#[test]
fn malformed_requests_get_typed_errors_not_panics() {
    let (server, rec) = demo_server(1, 16);
    // Wrong width.
    let got = server
        .submit(Request::Predict {
            model: ModelKind::Tree,
            rows: vec![vec![1.0, 2.0, 3.0]],
        })
        .unwrap()
        .wait(WAIT);
    assert!(matches!(got, Err(ServeError::Malformed(_))), "{got:?}");
    // Non-finite feature.
    let got = server
        .submit(Request::Score {
            rows: vec![vec![f64::INFINITY, 0.0]],
        })
        .unwrap()
        .wait(WAIT);
    assert!(matches!(got, Err(ServeError::Malformed(_))), "{got:?}");
    // k = 0.
    let got = server
        .submit(Request::Recommend {
            basket: vec![],
            k: 0,
        })
        .unwrap()
        .wait(WAIT);
    assert!(matches!(got, Err(ServeError::Malformed(_))), "{got:?}");
    // The server is still alive and serving.
    let ok = server
        .submit(Request::Recommend {
            basket: vec![],
            k: 3,
        })
        .unwrap()
        .wait(WAIT);
    assert!(ok.is_ok());
    server.shutdown();
    assert_eq!(rec.snapshot().counter("serve.resp.malformed"), Some(3));
}

#[test]
fn admission_queue_sheds_typed_overload_and_stays_bounded() {
    // No workers: nothing drains, so capacity + 1 submits must shed
    // exactly one request — deterministically.
    let (server, rec) = demo_server(0, 4);
    let mut tickets = Vec::new();
    for _ in 0..4 {
        tickets.push(
            server
                .submit(Request::Recommend {
                    basket: vec![],
                    k: 1,
                })
                .unwrap(),
        );
    }
    let shed = server.submit(Request::Recommend {
        basket: vec![],
        k: 1,
    });
    assert_eq!(shed.err(), Some(ServeError::Overloaded { depth: 4 }));
    assert_eq!(server.queue_depth(), 4);
    let drained = server.shutdown();
    assert_eq!(drained, 4);
    for ticket in tickets {
        assert_eq!(
            ticket.wait(Duration::from_millis(100)),
            Err(ServeError::ShuttingDown)
        );
    }
    let snap = rec.snapshot();
    assert_eq!(snap.counter("serve.req.admitted"), Some(4));
    assert_eq!(snap.counter("serve.shed.queue_full"), Some(1));
    assert_eq!(snap.counter("serve.shed.shutdown"), Some(4));
    assert_eq!(snap.gauge("serve.queue.depth_peak"), Some(4.0));
}

#[test]
fn cancelled_token_trips_the_request_to_truncated() {
    let (server, _rec) = demo_server(1, 8);
    let token = CancelToken::new();
    token.cancel();
    let response = server
        .submit_with(
            Request::Predict {
                model: ModelKind::Knn,
                rows: vec![vec![0.0, 0.0]],
            },
            Budget::unlimited(),
            token,
        )
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert!(matches!(response.status, RunStatus::Truncated(_)));
    assert_ne!(response.tier, Tier::Full);
    server.shutdown();
}

#[test]
fn zero_deadline_degrades_instead_of_hanging() {
    let (server, rec) = demo_server(1, 8);
    let response = server
        .submit_with(
            Request::Recommend {
                basket: vec![1],
                k: 3,
            },
            Budget::unlimited().with_deadline(Duration::ZERO),
            CancelToken::new(),
        )
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert!(matches!(response.status, RunStatus::Truncated(_)));
    assert_eq!(response.tier, Tier::TopSupportFallback);
    server.shutdown();
    assert_eq!(
        rec.snapshot().counter("serve.degraded.top_support"),
        Some(1)
    );
}

/// The workspace metric-naming convention (DESIGN.md "Metric naming"),
/// extended to the `serve` subsystem. `dm-core`'s registry test cannot
/// cover serve (core does not depend on it), so the serving layer
/// carries its own executable convention.
#[test]
fn every_serve_metric_follows_the_naming_convention() {
    let (server, rec) = demo_server(1, 2);
    // Drive every counter family: full-tier traffic, malformed,
    // degraded, shed, shutdown.
    let _ = server
        .submit(Request::Predict {
            model: ModelKind::Knn,
            rows: vec![vec![0.0, 0.0]],
        })
        .unwrap()
        .wait(WAIT);
    let _ = server
        .submit(Request::Predict {
            model: ModelKind::Tree,
            rows: vec![vec![1.0]],
        })
        .unwrap()
        .wait(WAIT);
    let _ = server
        .submit_with(
            Request::Recommend {
                basket: vec![],
                k: 1,
            },
            Budget::unlimited().with_max_work(0),
            CancelToken::new(),
        )
        .unwrap()
        .wait(WAIT);
    server.shutdown();
    let snap = rec.snapshot();
    assert!(!snap.is_empty());
    // Model code runs under the request guard, so downstream subsystem
    // metrics (knn.*, tree.*, ...) share this recorder — they are
    // covered by `dm-core`'s own registry test. Here: every metric
    // must belong to a known subsystem, and everything the serving
    // layer itself emits must be a well-formed `serve.*` name.
    const KNOWN: &[&str] = &[
        "serve",
        "assoc",
        "seq",
        "cluster",
        "tree",
        "knn",
        "par",
        "guard",
        "experiment",
    ];
    let well_named = |name: &str| {
        let segments: Vec<&str> = name.split('.').collect();
        segments.len() >= 2
            && segments.iter().all(|s| !s.is_empty())
            && KNOWN.contains(&segments[0])
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
    };
    let mut serve_metrics = 0usize;
    for (name, _) in snap.counters_with_prefix("") {
        assert!(well_named(name), "counter `{name}` breaks the convention");
        serve_metrics += usize::from(name.starts_with("serve."));
    }
    for (name, _) in snap.gauges_with_prefix("") {
        assert!(well_named(name), "gauge `{name}` breaks the convention");
        serve_metrics += usize::from(name.starts_with("serve."));
    }
    assert!(
        serve_metrics >= 5,
        "expected the serving layer's own metrics"
    );
}
