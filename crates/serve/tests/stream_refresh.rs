//! In-place artifact refresh from a streaming engine: a
//! [`StreamKMeans`] publishes a fresh model into a *running* server
//! via [`Server::refresh_artifact`], and served scores change without
//! a restart, a queue drain, or any downtime — while snapshots taken
//! before the swap stay immutable.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::obs::InMemoryRecorder;
use dm_core::stream::{StreamEngine, StreamKMeans};
use dm_serve::{ModelSet, Reply, Request, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(10);

/// Scores `probe` through the running server on the full pipeline
/// (admission queue → worker → kmeans scorer).
fn score(server: &Server, probe: &[f64]) -> f64 {
    let response = server
        .submit(Request::Score {
            rows: vec![probe.to_vec()],
        })
        .unwrap()
        .wait(WAIT)
        .unwrap();
    match response.reply {
        Reply::Scores(scores) => scores[0],
        other => panic!("unexpected reply {other:?}"),
    }
}

/// A drifted 2-blob point stream far away from the demo model's
/// training data, deterministic without RNG.
fn drifted_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let base = if i % 2 == 0 { 500.0 } else { 800.0 };
            vec![base + (i % 7) as f64 * 0.1, base - (i % 5) as f64 * 0.1]
        })
        .collect()
}

#[test]
fn stream_refresh_updates_served_scores_in_place() {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            default_deadline: Some(Duration::from_secs(5)),
            trace: None,
        },
        rec.clone(),
    );
    let probe = [500.0, 500.0];

    // The demo model was fitted near the origin, so the drifted probe
    // scores terribly...
    let before = score(&server, &probe);
    assert!(before > 1_000.0, "stale model should score far: {before}");

    // ...until a streaming engine catches up with the drift and
    // publishes its centroids into the live server.
    let mut stream = StreamKMeans::new(2, 8).unwrap();
    for p in drifted_points(2 + 64) {
        stream.insert(&p);
    }
    let fresh = stream.model().unwrap();
    let stale_snapshot = server.models();
    server.refresh_artifact(|m| m.with_kmeans(fresh.clone()));

    let after = score(&server, &probe);
    assert!(after < 1.0, "refreshed model should score near: {after}");

    // The swap is publish-subscribe, not mutation: the snapshot taken
    // before the refresh still holds the old centroids, while a new
    // snapshot serves the streamed ones.
    let old = stale_snapshot.kmeans().unwrap();
    let new_snapshot = server.models();
    let new = new_snapshot.kmeans().unwrap();
    assert!(old.centroids.row(0)[0].abs() < 100.0);
    assert!(new.centroids.row(0)[0] > 100.0);
    assert_eq!(new.centroids.rows(), 2);

    // A second refresh layered on the first composes (the closure sees
    // the *current* bundle, kmeans already swapped).
    server.refresh_artifact(|m| {
        assert!(m.kmeans().unwrap().centroids.row(0)[0] > 100.0);
        m
    });

    server.shutdown();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("serve.artifact.refreshed"), Some(2));
}
