//! End-to-end request tracing: a server configured with
//! `ServeConfig::trace` mints deterministic ids, threads lifecycle
//! events through the request path, tail-samples completed traces,
//! and links histogram exemplars back to retained traces. Shed and
//! degraded requests are always retained; a firing watch rule pins
//! whatever the store holds at the edge.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::guard::{Budget, CancelToken, RunStatus};
use dm_core::obs::watch::{AlertState, Condition, ManualClock, RuleSet, SloRule, Watcher};
use dm_core::obs::{InMemoryRecorder, Recorder};
use dm_serve::{
    ModelKind, ModelSet, Request, ServeConfig, ServeError, Server, TraceConfig, TraceId,
    WatchPolicy,
};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(10);
const SEED: u64 = 0xD1CE;

fn predict_req() -> Request {
    Request::Predict {
        model: ModelKind::Tree,
        rows: vec![vec![0.5, 0.5]],
    }
}

fn traced_config(workers: usize, capacity: usize, sample_every: u64) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: capacity,
        default_deadline: None,
        trace: Some(TraceConfig {
            seed: SEED,
            sample_every,
            ..TraceConfig::default()
        }),
    }
}

#[test]
fn tickets_carry_deterministic_trace_ids() {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        traced_config(1, 16, 1),
        rec as Arc<dyn Recorder>,
    );
    for seq in 1..=5u64 {
        let ticket = server.submit(predict_req()).unwrap();
        assert_eq!(
            ticket.trace_id(),
            Some(TraceId::mint(SEED, seq)),
            "id must be a pure function of (seed, seq)"
        );
        ticket.wait(WAIT).unwrap();
    }
    server.shutdown();

    // Without a trace config nothing is minted and no store exists.
    let untraced = Server::start(ModelSet::demo(7).unwrap(), ServeConfig::default());
    let ticket = untraced.submit(predict_req()).unwrap();
    assert_eq!(ticket.trace_id(), None);
    assert!(untraced.tracer().is_none());
    ticket.wait(WAIT).unwrap();
    untraced.shutdown();
}

#[test]
fn completed_requests_leave_resolvable_traces_with_exemplars() {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        traced_config(1, 16, 1), // sample_every=1: retain every trace
        rec.clone() as Arc<dyn Recorder>,
    );
    let mut ids = Vec::new();
    for _ in 0..4 {
        let ticket = server.submit(predict_req()).unwrap();
        ids.push(ticket.trace_id().unwrap());
        let response = ticket.wait(WAIT).unwrap();
        assert_eq!(response.status, RunStatus::Complete);
    }
    let tracer = server.tracer().unwrap();
    server.shutdown(); // joins workers: every offer has landed

    for id in &ids {
        let trace = tracer.find(*id).unwrap_or_else(|| panic!("{id} lost"));
        let labels: Vec<&str> = trace.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, ["submitted", "admitted", "dequeued", "finished"]);
        assert_eq!(trace.outcome(), "complete");
        assert!(!trace.is_anomalous());
        assert!(trace.total_ns >= trace.exec_ns);
    }

    // Every populated latency bucket carries an exemplar, and each
    // exemplar resolves to a retained trace.
    let snap = rec.snapshot();
    let hist = snap.histogram("serve.latency.predict_ns").unwrap();
    let exemplars = snap.exemplars.get("serve.latency.predict_ns").unwrap();
    for (bucket, count) in hist.nonzero_buckets() {
        assert!(count >= 1);
        let ex = exemplars
            .get(&bucket)
            .unwrap_or_else(|| panic!("bucket {bucket} has no exemplar"));
        assert!(
            tracer.find(TraceId(ex.trace_id)).is_some(),
            "exemplar {:016x} does not resolve to a retained trace",
            ex.trace_id
        );
    }
    // The queue/exec split landed alongside the legacy wait histogram.
    assert_eq!(snap.histogram("serve.request.queue_ns").unwrap().count, 4);
    assert_eq!(snap.histogram("serve.request.exec_ns").unwrap().count, 4);
}

#[test]
fn sheds_and_shutdown_answers_are_always_retained() {
    let rec = Arc::new(InMemoryRecorder::new());
    // No workers, capacity 1, sampling off: only anomalous traces can
    // be retained at all.
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        traced_config(0, 1, 0),
        rec.clone() as Arc<dyn Recorder>,
    );
    let held = server.submit(predict_req()).unwrap();
    let held_id = held.trace_id().unwrap();
    for _ in 0..3 {
        match server.submit(predict_req()) {
            Err(ServeError::Overloaded { .. }) => {}
            Err(other) => panic!("expected shed, got {other:?}"),
            Ok(_) => panic!("expected shed, got an admitted ticket"),
        }
    }
    let tracer = server.tracer().unwrap();
    assert_eq!(server.shutdown(), 1, "the held job is answered at drain");

    let retained = tracer.retained();
    assert_eq!(retained.len(), 4, "3 sheds + 1 shutdown answer");
    let queue_full = retained
        .iter()
        .filter(|t| t.outcome() == "queue_full")
        .count();
    assert_eq!(queue_full, 3);
    let drained = retained
        .iter()
        .find(|t| t.outcome() == "shutdown")
        .expect("drained job leaves a trace");
    assert_eq!(drained.id, held_id);
    // It genuinely was admitted before shutdown answered it.
    assert!(drained.events.iter().any(|e| e.kind.label() == "admitted"));
    for t in &retained {
        assert!(t.is_anomalous());
    }
    let snap = rec.snapshot();
    assert_eq!(snap.counter("trace.retained"), Some(4));
    assert!(snap.counter("trace.dropped").is_none());
}

#[test]
fn guard_trips_and_degraded_tiers_mark_traces_anomalous() {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        traced_config(1, 16, 0), // sampling off: retention ⇒ anomalous
        rec as Arc<dyn Recorder>,
    );
    // A zero deadline trips the guard at its first check; the tree
    // endpoint answers from the majority tier.
    let ticket = server
        .submit_with(
            predict_req(),
            Budget::unlimited().with_deadline(Duration::ZERO),
            CancelToken::new(),
        )
        .unwrap();
    let id = ticket.trace_id().unwrap();
    let response = ticket.wait(WAIT).unwrap();
    assert!(matches!(response.status, RunStatus::Truncated(_)));
    let tracer = server.tracer().unwrap();
    server.shutdown();

    let trace = tracer.find(id).expect("degraded trace always retained");
    assert!(trace.is_anomalous());
    assert_eq!(trace.outcome(), "truncated");
    let labels: Vec<&str> = trace.events.iter().map(|e| e.kind.label()).collect();
    assert!(labels.contains(&"guard_trip"), "{labels:?}");
    assert!(labels.contains(&"degraded"), "{labels:?}");
}

#[test]
fn refresh_between_submit_and_pickup_is_recorded_as_a_race() {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        traced_config(1, 64, 1),
        rec as Arc<dyn Recorder>,
    );
    // Build a queue backlog the single worker has to chew through,
    // enqueue the probe behind it, then refresh while the probe is
    // still queued: the probe is served under a newer generation than
    // it saw at admission.
    for _ in 0..20 {
        let _ = server.submit(predict_req()).unwrap();
    }
    let probe = server.submit(predict_req()).unwrap();
    let id = probe.trace_id().unwrap();
    server.refresh_artifact(|m| m);
    probe.wait(WAIT).unwrap();
    let tracer = server.tracer().unwrap();
    server.shutdown();
    let trace = tracer.find(id).expect("probe trace retained");
    let race = trace
        .events
        .iter()
        .find(|e| e.kind.label() == "refresh_race")
        .expect("probe must record the refresh race");
    match &race.kind {
        dm_core::obs::trace::TraceEventKind::RefreshRace {
            submitted_gen,
            served_gen,
        } => {
            assert_eq!(*submitted_gen, 0);
            assert_eq!(*served_gen, 1);
        }
        other => panic!("wrong event kind: {other:?}"),
    }
}

#[test]
fn firing_watch_rule_pins_retained_traces() {
    let recorder = Arc::new(InMemoryRecorder::new());
    let server = Server::start_recorded(
        ModelSet::demo(7).unwrap(),
        traced_config(0, 1, 0),
        recorder.clone() as Arc<dyn Recorder>,
    );
    let clock = Arc::new(ManualClock::new(0));
    let rule = SloRule::new(
        "shed-rate",
        Condition::RatioAbove {
            numerator: "serve.shed.queue_full".into(),
            denominators: vec!["serve.req.admitted".into(), "serve.shed.queue_full".into()],
            max: 0.5,
        },
    )
    .for_ms(100);
    let watcher = Watcher::new(RuleSet::new(vec![rule]), 300, clock.clone());
    server.install_watch(recorder.clone(), watcher, WatchPolicy::default());

    // Baseline tick before any traffic: establishes the window floor.
    assert!(server.watch_tick().unwrap().transitions.is_empty());

    let _held = server.submit(predict_req()).unwrap();
    for _ in 0..3 {
        let _ = server.submit(predict_req());
    }
    clock.advance(100); // breach -> Pending
    let report = server.watch_tick().unwrap();
    assert_eq!(report.transitions[0].to, AlertState::Pending);
    let tracer = server.tracer().unwrap();
    assert!(
        tracer.retained().iter().all(|t| t.pinned.is_empty()),
        "pending must not pin"
    );
    clock.advance(100); // held -> Firing: pins everything retained
    let report = server.watch_tick().unwrap();
    assert_eq!(report.transitions[0].to, AlertState::Firing);
    let retained = tracer.retained();
    assert_eq!(retained.len(), 3, "the three sheds");
    for t in &retained {
        assert_eq!(t.pinned, vec!["shed-rate".to_owned()]);
    }
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("trace.pinned"), Some(3));
    let _ = server.shutdown();
}
