//! Chaos harness (requires `--features failpoints`): deterministic
//! fault injection in the request path. The invariants under every
//! storm: the server stays live, overload is shed with a *typed*
//! error, and every delivered response is either `Complete` or
//! honestly `Truncated` — never silently wrong, never a hang.
#![cfg(feature = "failpoints")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::guard::RunStatus;
use dm_core::obs::InMemoryRecorder;
use dm_serve::{
    ChaosConfig, LoadGenConfig, ModelKind, ModelSet, Request, ServeConfig, ServeError, Server, Tier,
};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(10);

fn recorded_chaos(
    workers: usize,
    capacity: usize,
    chaos: ChaosConfig,
) -> (Server, Arc<InMemoryRecorder>) {
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_chaos(
        ModelSet::demo(7).unwrap(),
        ServeConfig {
            workers,
            queue_capacity: capacity,
            default_deadline: Some(Duration::from_secs(5)),
            trace: None,
        },
        Some(rec.clone()),
        chaos,
    );
    (server, rec)
}

fn tiny_predict() -> Request {
    Request::Predict {
        model: ModelKind::Tree,
        rows: vec![vec![0.5, 0.5]],
    }
}

#[test]
fn injected_worker_panics_are_typed_and_the_worker_recycles() {
    // One worker, panic on every 3rd admitted request: requests 3, 6
    // and 9 come back `WorkerPanicked`, everything else serves — on
    // the *same* worker thread, which is the isolation claim.
    let (server, rec) = recorded_chaos(
        1,
        16,
        ChaosConfig {
            panic_every: Some(3),
            trip_every: None,
        },
    );
    for seq in 1..=9u64 {
        let got = server.submit(tiny_predict()).unwrap().wait(WAIT);
        if seq % 3 == 0 {
            assert!(
                matches!(got, Err(ServeError::WorkerPanicked)),
                "seq {seq}: {got:?}"
            );
        } else {
            let response = got.unwrap();
            assert_eq!(response.status, RunStatus::Complete, "seq {seq}");
            assert_eq!(response.tier, Tier::Full, "seq {seq}");
        }
    }
    server.shutdown();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("serve.worker.recycled"), Some(3));
    assert_eq!(snap.counter("serve.resp.complete"), Some(6));
}

#[test]
fn guard_failpoint_storm_degrades_every_endpoint_honestly() {
    // Arm dm-guard's fail point on every request: the first governed
    // check trips, simulating a deadline storm with zero real clock
    // pressure. Every endpoint must answer Truncated on its fallback
    // tier — no panics, no hangs, no silently-full answers.
    let (server, rec) = recorded_chaos(
        1,
        16,
        ChaosConfig {
            panic_every: None,
            trip_every: Some(1),
        },
    );
    let knn = server
        .submit(Request::Predict {
            model: ModelKind::Knn,
            rows: vec![vec![0.1, 0.2], vec![7.9, 0.4]],
        })
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert!(matches!(knn.status, RunStatus::Truncated(_)));
    assert_eq!(knn.tier, Tier::CentroidFallback);

    let tree = server.submit(tiny_predict()).unwrap().wait(WAIT).unwrap();
    assert!(matches!(tree.status, RunStatus::Truncated(_)));
    assert_eq!(tree.tier, Tier::MajorityFallback);

    let rec_resp = server
        .submit(Request::Recommend {
            basket: vec![1],
            k: 3,
        })
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert!(matches!(rec_resp.status, RunStatus::Truncated(_)));
    assert_eq!(rec_resp.tier, Tier::TopSupportFallback);

    server.shutdown();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("serve.resp.truncated"), Some(3));
    assert!(snap.counter("serve.resp.complete").is_none());
    assert_eq!(snap.counter("serve.degraded.centroid"), Some(1));
    assert_eq!(snap.counter("serve.degraded.majority"), Some(1));
    assert_eq!(snap.counter("serve.degraded.top_support"), Some(1));
}

#[test]
fn panic_storm_under_load_keeps_serving() {
    let (server, rec) = recorded_chaos(
        2,
        64,
        ChaosConfig {
            panic_every: Some(4),
            trip_every: None,
        },
    );
    let config = LoadGenConfig {
        clients: 1,
        requests_per_client: 20,
        deadline: None,
        ..LoadGenConfig::default()
    };
    let report = dm_serve::loadgen::run(&server, &config);
    // Single client, roomy queue: admission order == request order, so
    // exactly requests 4, 8, 12, 16, 20 panic.
    assert_eq!(report.panicked, 5);
    assert_eq!(report.ok + report.truncated, 15);
    assert_eq!(report.shed, 0);
    // Still alive after the storm.
    let after = server.submit(tiny_predict()).unwrap().wait(WAIT).unwrap();
    assert_eq!(after.status, RunStatus::Complete);
    server.shutdown();
    assert_eq!(rec.snapshot().counter("serve.worker.recycled"), Some(5));
}

#[test]
fn malformed_storm_is_refused_typed_at_full_rate() {
    let (server, rec) = recorded_chaos(2, 64, ChaosConfig::default());
    let config = LoadGenConfig {
        clients: 2,
        requests_per_client: 15,
        malformed_ratio: 1.0,
        deadline: None,
        ..LoadGenConfig::default()
    };
    let report = dm_serve::loadgen::run(&server, &config);
    assert_eq!(report.malformed, 30, "{report:?}");
    assert_eq!(report.ok, 0);
    assert_eq!(report.panicked, 0);
    // Validation happens inside the worker; the server shrugs it off.
    let after = server.submit(tiny_predict()).unwrap().wait(WAIT).unwrap();
    assert_eq!(after.status, RunStatus::Complete);
    server.shutdown();
    assert_eq!(rec.snapshot().counter("serve.resp.malformed"), Some(30));
}

#[test]
fn stalled_clients_never_wedge_the_server_and_the_queue_stays_bounded() {
    // Every client submits and walks away without collecting. The
    // responder must not block on the abandoned tickets and the queue
    // depth must never exceed its bound.
    let (server, rec) = recorded_chaos(1, 8, ChaosConfig::default());
    let config = LoadGenConfig {
        clients: 2,
        requests_per_client: 20,
        stall_ratio: 1.0,
        max_attempts: 1,
        deadline: None,
        ..LoadGenConfig::default()
    };
    let report = dm_serve::loadgen::run(&server, &config);
    assert_eq!(report.stalled + report.shed, 40, "{report:?}");
    assert!(report.stalled > 0);
    // The worker is still draining jobs whose clients walked away; give
    // it a moment so the after-probe isn't shed by their backlog.
    let settle = std::time::Instant::now();
    while server.queue_depth() > 0 && settle.elapsed() < WAIT {
        std::thread::sleep(Duration::from_millis(10));
    }
    let after = server.submit(tiny_predict()).unwrap().wait(WAIT).unwrap();
    assert_eq!(after.status, RunStatus::Complete);
    server.shutdown();
    let snap = rec.snapshot();
    let peak = snap.gauge("serve.queue.depth_peak").unwrap_or(0.0);
    assert!(peak <= 8.0, "queue peaked at {peak}, bound is 8");
}

#[test]
fn retry_budget_caps_amplification_deterministically() {
    // No workers, capacity 1, stalling client: request 1 occupies the
    // queue forever, so every later submit sheds. max_attempts 3 with
    // a global pot of 2 ⇒ request 2 spends both tokens, requests 3-5
    // shed on the first attempt. All counters are exact.
    let server = Server::start(
        ModelSet::demo(7).unwrap(),
        ServeConfig {
            workers: 0,
            queue_capacity: 1,
            default_deadline: None,
            trace: None,
        },
    );
    let config = LoadGenConfig {
        clients: 1,
        requests_per_client: 5,
        stall_ratio: 1.0,
        max_attempts: 3,
        retry_budget: 2,
        base_backoff: Duration::from_micros(10),
        deadline: None,
        ..LoadGenConfig::default()
    };
    let report = dm_serve::loadgen::run(&server, &config);
    assert_eq!(report.stalled, 1, "{report:?}");
    assert_eq!(report.shed, 4);
    assert_eq!(report.retries, 2);
    assert_eq!(report.attempts, 1 + 3 + 1 + 1 + 1);
    assert_eq!(server.shutdown(), 1);
}

/// Panic-recovery traces survive the tail sampler, and (when the
/// `TRACE_DUMP` env var points at a path — the CI serve-chaos job sets
/// it) the retained set is dumped in the `dm trace` file format so the
/// run's forensics ship as a build artifact.
#[test]
fn panic_recovery_traces_are_retained_and_dumpable() {
    use dm_core::obs::trace::{traces_to_json, TraceConfig};
    let rec = Arc::new(InMemoryRecorder::new());
    let server = Server::start_chaos(
        ModelSet::demo(7).unwrap(),
        ServeConfig {
            workers: 1,
            queue_capacity: 16,
            default_deadline: Some(Duration::from_secs(5)),
            trace: Some(TraceConfig {
                seed: 0xC405,
                sample_every: 0, // anomalous-only retention...
                slowest_k: 0,    // ...with slowest-k off too
                ..TraceConfig::default()
            }),
        },
        Some(rec.clone()),
        ChaosConfig {
            panic_every: Some(3),
            trip_every: None,
        },
    );
    for seq in 1..=9u64 {
        let got = server.submit(tiny_predict()).unwrap().wait(WAIT);
        assert_eq!(seq % 3 == 0, got == Err(ServeError::WorkerPanicked));
    }
    let tracer = server.tracer().unwrap();
    server.shutdown();

    let retained = tracer.retained();
    let panicked: Vec<_> = retained
        .iter()
        .filter(|t| t.events.iter().any(|e| e.kind.label() == "panic_recovered"))
        .collect();
    assert_eq!(panicked.len(), 3, "requests 3, 6, 9");
    for t in &panicked {
        assert!(t.is_anomalous());
        assert_eq!(t.outcome(), "panicked");
    }
    assert_eq!(rec.snapshot().counter("trace.retained"), Some(3));

    if let Ok(path) = std::env::var("TRACE_DUMP") {
        std::fs::write(&path, traces_to_json(&retained))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}

#[test]
fn load_generator_is_bit_reproducible_for_a_fixed_seed() {
    // Two fresh server+loadgen pairs, same seed: every deterministic
    // counter matches exactly. This is what lets E15 gate serving
    // counters at 0% tolerance.
    let run_once = || {
        let server = Server::start(
            ModelSet::demo(7).unwrap(),
            ServeConfig {
                workers: 2,
                queue_capacity: 256,
                default_deadline: None,
                trace: None,
            },
        );
        let config = LoadGenConfig {
            seed: 42,
            clients: 2,
            requests_per_client: 25,
            malformed_ratio: 0.3,
            deadline: None,
            ..LoadGenConfig::default()
        };
        let report = dm_serve::loadgen::run(&server, &config);
        server.shutdown();
        report
    };
    let a = run_once();
    let b = run_once();
    for (name, x, y) in [
        ("attempts", a.attempts, b.attempts),
        ("ok", a.ok, b.ok),
        ("truncated", a.truncated, b.truncated),
        ("degraded", a.degraded, b.degraded),
        ("shed", a.shed, b.shed),
        ("malformed", a.malformed, b.malformed),
        ("panicked", a.panicked, b.panicked),
        ("shutdown", a.shutdown, b.shutdown),
        ("stalled", a.stalled, b.stalled),
        ("retries", a.retries, b.retries),
    ] {
        assert_eq!(x, y, "counter `{name}` differs across identical runs");
    }
    assert!(a.ok > 0 && a.malformed > 0, "{a:?}");
}
