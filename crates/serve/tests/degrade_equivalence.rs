//! Satellite: degradation tiers are not "best effort" — each fallback
//! is a deterministic function, and a degraded *served* response is
//! bit-identical to invoking the fallback directly. Without this, a
//! deadline storm would make responses irreproducible and the E15
//! ledger gate meaningless.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::guard::{Budget, CancelToken, Guard, RunStatus};
use dm_serve::{ModelKind, ModelSet, Reply, Request, ServeConfig, Server, Tier};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(10);

fn rows() -> Vec<Vec<f64>> {
    vec![
        vec![0.1, 0.2],
        vec![8.0, 0.3],
        vec![0.2, 8.1],
        vec![7.9, 7.8],
        vec![-1.0, 3.0],
    ]
}

#[test]
fn centroid_fallback_is_deterministic_and_matches_direct_invocation() {
    let models = ModelSet::demo(11).unwrap();
    let direct = models.centroid_predict(&rows()).unwrap().unwrap();
    let again = models.centroid_predict(&rows()).unwrap().unwrap();
    assert_eq!(direct, again, "fallback must be deterministic");

    // A served kNN request whose work budget admits nothing must
    // produce exactly the direct fallback answer.
    let guard = Guard::new(Budget::unlimited().with_max_work(0));
    let (reply, tier) = models.predict(ModelKind::Knn, &rows(), &guard).unwrap();
    assert_eq!(tier, Tier::CentroidFallback);
    assert_eq!(reply, Reply::Classes(direct.clone()));

    // And under an unlimited guard the fallback path is never taken —
    // but the fallback itself, run governed, still matches its
    // ungoverned self (`Guard::unlimited()` changes nothing).
    let (full_reply, full_tier) = models
        .predict(ModelKind::Knn, &rows(), &Guard::unlimited())
        .unwrap();
    assert_eq!(full_tier, Tier::Full);
    let knn_direct = models
        .knn()
        .unwrap()
        .predict(&dm_core::dataset::Matrix::from_rows(&rows()).unwrap())
        .unwrap();
    assert_eq!(full_reply, Reply::Classes(knn_direct));
}

#[test]
fn top_support_fallback_is_deterministic_and_matches_direct_invocation() {
    let models = ModelSet::demo(11).unwrap();
    let basket = vec![1, 5, 9];
    let direct = models.top_support_recommend(&basket, 4);
    let again = models.top_support_recommend(&basket, 4);
    assert_eq!(direct, again, "fallback must be deterministic");
    assert!(!direct.is_empty(), "demo must have frequent singletons");
    // Scores are support counts, descending.
    for pair in direct.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
    // Zero work budget: the rule scan trips immediately and the served
    // answer must equal the direct fallback.
    let guard = Guard::new(Budget::unlimited().with_max_work(0));
    let (reply, tier) = models.recommend(&basket, 4, &guard).unwrap();
    assert_eq!(tier, Tier::TopSupportFallback);
    assert_eq!(reply, Reply::Recommendations(direct));
}

#[test]
fn majority_fallback_answers_the_default_class() {
    let models = ModelSet::demo(11).unwrap();
    let guard = Guard::new(Budget::unlimited().with_max_work(2));
    let (reply, tier) = models.predict(ModelKind::Tree, &rows(), &guard).unwrap();
    assert_eq!(tier, Tier::MajorityFallback);
    let Reply::Classes(classes) = reply else {
        panic!("expected classes");
    };
    // Two rows answered by the tree, the tail by the majority class.
    let (full, _) = models
        .predict(ModelKind::Tree, &rows(), &Guard::unlimited())
        .unwrap();
    let Reply::Classes(full_classes) = full else {
        panic!("expected classes");
    };
    assert_eq!(classes[..2], full_classes[..2]);
    assert!(classes[2..].iter().all(|&c| c == models.default_class()));
}

#[test]
fn score_degrades_by_honest_truncation() {
    let models = ModelSet::demo(11).unwrap();
    let guard = Guard::new(Budget::unlimited().with_max_work(3));
    let (reply, tier) = models.score(&rows(), &guard).unwrap();
    assert_eq!(tier, Tier::Full, "score has no cheaper tier");
    let Reply::Scores(scores) = reply else {
        panic!("expected scores");
    };
    assert_eq!(scores.len(), 3, "prefix under a 3-unit budget");
    let (full_reply, _) = models.score(&rows(), &Guard::unlimited()).unwrap();
    let Reply::Scores(full_scores) = full_reply else {
        panic!("expected scores");
    };
    assert_eq!(scores[..], full_scores[..3], "prefix is bit-identical");
}

#[test]
fn served_degraded_response_equals_direct_fallback_end_to_end() {
    let models = ModelSet::demo(11).unwrap();
    let direct = models.centroid_predict(&rows()).unwrap().unwrap();
    let server = Server::start(
        models,
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            trace: None,
        },
    );
    let response = server
        .submit_with(
            Request::Predict {
                model: ModelKind::Knn,
                rows: rows(),
            },
            Budget::unlimited().with_max_work(0),
            CancelToken::new(),
        )
        .unwrap()
        .wait(WAIT)
        .unwrap();
    assert!(matches!(response.status, RunStatus::Truncated(_)));
    assert_eq!(response.tier, Tier::CentroidFallback);
    assert_eq!(response.reply, Reply::Classes(direct));
    server.shutdown();
}
