//! Artifact bundle round-trip and corruption behaviour: save → load
//! preserves serving behaviour bit-for-bit for every serialized model,
//! save → load → save is byte-stable, and *any* corruption of the
//! bytes surfaces as a typed, readable `ArtifactError` — never a
//! panic, hang, or silently different model.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::guard::Guard;
use dm_serve::{load_artifacts, save_artifacts, ArtifactError, ModelKind, ModelSet};

fn rows() -> Vec<Vec<f64>> {
    vec![
        vec![0.05, -0.2],
        vec![8.4, 0.2],
        vec![0.3, 7.7],
        vec![3.9, 4.1],
    ]
}

#[test]
fn save_load_preserves_serving_behaviour() {
    let original = ModelSet::demo(23).unwrap();
    let bytes = save_artifacts(&original);
    let reloaded = load_artifacts(&bytes).unwrap();
    let g = Guard::unlimited();
    // Serialized models answer identically.
    for kind in [ModelKind::Tree, ModelKind::Knn] {
        assert_eq!(
            original.predict(kind, &rows(), &g).unwrap(),
            reloaded.predict(kind, &rows(), &g).unwrap(),
            "{kind:?}"
        );
    }
    assert_eq!(
        original.score(&rows(), &g).unwrap(),
        reloaded.score(&rows(), &g).unwrap()
    );
    assert_eq!(
        original.recommend(&[1, 2, 3], 5, &g).unwrap(),
        reloaded.recommend(&[1, 2, 3], 5, &g).unwrap()
    );
    // Fallback state reconstructed too.
    assert_eq!(
        original.centroid_predict(&rows()).unwrap(),
        reloaded.centroid_predict(&rows()).unwrap()
    );
    assert_eq!(
        original.top_support_recommend(&[7], 3),
        reloaded.top_support_recommend(&[7], 3)
    );
    // Ensemble/NB are documented as fit-in-process only.
    assert!(matches!(
        reloaded.predict(ModelKind::Ensemble, &rows(), &g),
        Err(dm_serve::ServeError::ModelUnavailable("ensemble"))
    ));
}

#[test]
fn save_load_save_is_byte_stable() {
    let original = ModelSet::demo(23).unwrap();
    let first = save_artifacts(&original);
    let second = save_artifacts(&load_artifacts(&first).unwrap());
    assert_eq!(first, second);
}

#[test]
fn truncated_bytes_are_a_typed_error() {
    let bytes = save_artifacts(&ModelSet::demo(23).unwrap());
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 2] {
        let err = load_artifacts(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Json(_) | ArtifactError::Shape(_)),
            "cut at {cut}: {err:?}"
        );
        // Readable: the Display impl says what and where.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn bitflip_corruption_never_panics_and_never_loads_silently_wrong_structure() {
    let bytes = save_artifacts(&ModelSet::demo(23).unwrap());
    // Flip a spread of bytes; each either still parses to a valid
    // bundle (flips inside numbers/strings can stay structurally
    // valid) or errors typed — the test is that nothing panics and
    // structural damage is caught.
    let step = (bytes.len() / 64).max(1);
    for i in (0..bytes.len()).step_by(step) {
        let mut corrupted = bytes.as_bytes().to_vec();
        corrupted[i] ^= 0x15;
        let Ok(text) = String::from_utf8(corrupted) else {
            continue;
        };
        match load_artifacts(&text) {
            Ok(models) => {
                // Whatever loaded must actually serve without panicking.
                let g = Guard::unlimited();
                let _ = models.predict(ModelKind::Tree, &rows(), &g);
                let _ = models.recommend(&[1], 3, &g);
            }
            Err(err) => assert!(!err.to_string().is_empty()),
        }
    }
}

#[test]
fn schema_version_from_the_future_is_refused() {
    let bytes = save_artifacts(&ModelSet::demo(23).unwrap());
    let bumped = bytes.replacen("\"artifact_schema\": 1", "\"artifact_schema\": 99", 1);
    assert_eq!(
        load_artifacts(&bumped).unwrap_err(),
        ArtifactError::SchemaTooNew(99)
    );
}

#[test]
fn structural_damage_in_the_tree_is_caught_by_validation() {
    let models = ModelSet::demo(23).unwrap();
    let bytes = save_artifacts(&models);
    // Point the root at a missing node.
    let damaged = bytes.replacen("\"root\": ", "\"root\": 99999, \"unused\": ", 1);
    match load_artifacts(&damaged) {
        Err(ArtifactError::Shape(msg)) => assert!(msg.contains("root"), "{msg}"),
        other => panic!("expected Shape error, got {other:?}"),
    }
}
