//! Exhaustive sequential-pattern oracle for the test suite.

use crate::{AprioriAll, SeqMiningResult, SequenceDb, SequentialPattern};
use dm_dataset::DataError;
use std::time::Instant;

/// Upper bound on the item universe the oracle accepts (the element
/// space is `2^N - 1` itemsets per position).
pub const MAX_BRUTE_SEQ_ITEMS: u32 = 8;

/// Enumerates every frequent sequential pattern by depth-first extension
/// with direct support counting. Support anti-monotonicity (extending a
/// pattern can only lose supporting customers) makes the pruned DFS
/// exhaustive. Exponential — tiny inputs only.
#[derive(Debug, Clone)]
pub struct BruteForceSeq {
    min_support: f64,
    max_len: usize,
}

impl BruteForceSeq {
    /// Creates an oracle capped at patterns of `max_len` elements.
    pub fn new(min_support: f64, max_len: usize) -> Self {
        Self {
            min_support,
            max_len,
        }
    }

    /// Mines all (non-maximal) frequent patterns of `db`.
    pub fn mine(&self, db: &SequenceDb) -> Result<SeqMiningResult, DataError> {
        let t0 = Instant::now();
        if db.n_items() > MAX_BRUTE_SEQ_ITEMS {
            return Err(DataError::InvalidParameter(format!(
                "brute-force sequence mining over {} items (limit {MAX_BRUTE_SEQ_ITEMS})",
                db.n_items()
            )));
        }
        let min_count = db.min_support_count(self.min_support)?;
        // Frequent single elements: all item subsets with enough support.
        let n = db.n_items();
        let mut elements: Vec<Vec<u32>> = Vec::new();
        for mask in 1u32..(1u32 << n) {
            let itemset: Vec<u32> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if db.support_count(std::slice::from_ref(&itemset)) >= min_count {
                elements.push(itemset);
            }
        }
        // DFS extension.
        let mut patterns: Vec<SequentialPattern> = Vec::new();
        let mut stack: Vec<Vec<Vec<u32>>> = elements.iter().map(|e| vec![e.clone()]).collect();
        while let Some(pattern) = stack.pop() {
            let count = db.support_count(&pattern);
            if count < min_count {
                continue;
            }
            if pattern.len() < self.max_len {
                for e in &elements {
                    let mut ext = pattern.clone();
                    ext.push(e.clone());
                    stack.push(ext);
                }
            }
            patterns.push(SequentialPattern {
                elements: pattern,
                support_count: count,
            });
        }
        patterns.sort_by(|a, b| {
            a.elements
                .len()
                .cmp(&b.elements.len())
                .then(a.elements.cmp(&b.elements))
        });
        let mut frequent_per_length = vec![0usize; self.max_len];
        for p in &patterns {
            frequent_per_length[p.elements.len() - 1] += 1;
        }
        while frequent_per_length.last() == Some(&0) {
            frequent_per_length.pop();
        }
        Ok(SeqMiningResult {
            n_litemsets: elements.len(),
            patterns,
            frequent_per_length,
            duration: t0.elapsed(),
        })
    }
}

/// Compares oracle output with [`AprioriAll`] in non-maximal mode —
/// exposed so both unit and property tests share it.
pub fn assert_matches_oracle(db: &SequenceDb, min_support: f64, max_len: usize) {
    let oracle = BruteForceSeq::new(min_support, max_len)
        .mine(db)
        .unwrap_or_else(|e| panic!("oracle limits respected: {e}"));
    let mined = AprioriAll::new(min_support)
        .with_max_len(max_len)
        .keep_non_maximal()
        .mine(db)
        .unwrap_or_else(|e| panic!("mining succeeds: {e}"));
    // Oracle counts every pattern made of frequent *elements*; AprioriAll
    // reports patterns whose elements are litemsets. These coincide: an
    // element of a frequent pattern is itself frequent.
    let oracle_set: Vec<(&Vec<Vec<u32>>, usize)> = oracle
        .patterns
        .iter()
        .map(|p| (&p.elements, p.support_count))
        .collect();
    let mined_set: Vec<(&Vec<Vec<u32>>, usize)> = mined
        .patterns
        .iter()
        .map(|p| (&p.elements, p.support_count))
        .collect();
    assert_eq!(
        oracle_set, mined_set,
        "AprioriAll disagrees with the oracle at minsup {min_support}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> SequenceDb {
        // Remapped to a small universe (items 0..6) for the oracle:
        // 30->0, 90->1, 10->2, 20->3, 40->4, 60->5, 70->6 is 7 items; use
        // a trimmed variant with the same structure.
        SequenceDb::new(vec![
            vec![vec![0], vec![1]],
            vec![vec![2, 3], vec![0], vec![4, 6]],
            vec![vec![0, 5, 6]],
            vec![vec![0], vec![4, 6], vec![1]],
            vec![vec![1]],
        ])
    }

    #[test]
    fn oracle_matches_apriori_all_on_paper_shape() {
        assert_matches_oracle(&paper_db(), 0.25, 3);
        assert_matches_oracle(&paper_db(), 0.4, 3);
        assert_matches_oracle(&paper_db(), 0.8, 2);
    }

    #[test]
    fn oracle_rejects_big_universes() {
        let db = SequenceDb::new(vec![vec![vec![0, 20]]]);
        assert!(BruteForceSeq::new(0.5, 2).mine(&db).is_err());
    }

    #[test]
    fn oracle_counts_by_customer() {
        let db = SequenceDb::new(vec![vec![vec![0], vec![0], vec![0]], vec![vec![1]]]);
        let r = BruteForceSeq::new(0.5, 2).mine(&db).unwrap();
        // <0> supported by one customer (50%): present.
        assert!(r
            .patterns
            .iter()
            .any(|p| p.elements == vec![vec![0]] && p.support_count == 1));
        // <0 0> also supported by that customer.
        assert!(r
            .patterns
            .iter()
            .any(|p| p.elements == vec![vec![0], vec![0]]));
    }
}
