//! # dm-seq
//!
//! Sequential-pattern mining after Agrawal & Srikant, *"Mining
//! Sequential Patterns"* (ICDE 1995): given a database of *customer
//! sequences* (ordered lists of transactions), find all sequences of
//! itemsets contained in at least `minsup` of the customers.
//!
//! The crate provides:
//!
//! * [`SequenceDb`] — the customer-sequence database.
//! * [`AprioriAll`] — the paper's count-all algorithm, complete with its
//!   litemset phase, the transformed database, the apriori-style
//!   sequence phase, and the maximal-phase filter.
//! * [`BruteForceSeq`] — the exhaustive oracle used by the tests.
//! * [`SequenceGenerator`] — a Quest-style synthetic generator of
//!   correlated customer sequences.
//!
//! ```
//! use dm_seq::{AprioriAll, SequenceDb};
//!
//! // Two of three customers first buy {1}, later buy {2, 3} together.
//! let db = SequenceDb::new(vec![
//!     vec![vec![1], vec![2, 3]],
//!     vec![vec![1], vec![4], vec![2, 3]],
//!     vec![vec![2], vec![1]],
//! ]);
//! let result = AprioriAll::new(0.6).mine(&db).unwrap();
//! assert!(result
//!     .patterns
//!     .iter()
//!     .any(|p| p.elements == vec![vec![1], vec![2, 3]]));
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod apriori_all;
pub mod brute;
pub mod generator;

pub use apriori_all::{AprioriAll, SeqMiningResult, SequentialPattern};
pub use brute::BruteForceSeq;
pub use generator::{SequenceConfig, SequenceGenerator};

use dm_dataset::DataError;

/// One customer's transaction history: an ordered list of itemsets
/// (each sorted, deduplicated).
pub type CustomerSequence = Vec<Vec<u32>>;

/// A database of customer sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceDb {
    sequences: Vec<CustomerSequence>,
    n_items: u32,
}

impl SequenceDb {
    /// Builds a database; each transaction is sorted and deduplicated,
    /// and empty transactions are dropped.
    pub fn new(raw: Vec<CustomerSequence>) -> Self {
        let mut n_items = 0u32;
        let sequences = raw
            .into_iter()
            .map(|seq| {
                seq.into_iter()
                    .map(|mut txn| {
                        txn.sort_unstable();
                        txn.dedup();
                        if let Some(&max) = txn.last() {
                            n_items = n_items.max(max + 1);
                        }
                        txn
                    })
                    .filter(|txn| !txn.is_empty())
                    .collect()
            })
            .collect();
        Self { sequences, n_items }
    }

    /// Number of customers.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// One past the largest item id.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// The sequence of customer `i`.
    pub fn sequence(&self, i: usize) -> &CustomerSequence {
        &self.sequences[i]
    }

    /// Iterates customer sequences.
    pub fn iter(&self) -> impl Iterator<Item = &CustomerSequence> {
        self.sequences.iter()
    }

    /// Mean transactions per customer.
    pub fn mean_len(&self) -> f64 {
        if self.sequences.is_empty() {
            return 0.0;
        }
        self.sequences.iter().map(Vec::len).sum::<usize>() as f64 / self.sequences.len() as f64
    }

    /// Whether `pattern` (a sequence of sorted itemsets) is contained in
    /// customer sequence `seq`: each pattern element must be a subset of
    /// a distinct transaction, in order. Greedy left-to-right matching
    /// is exact for this containment relation.
    pub fn contains(seq: &CustomerSequence, pattern: &[Vec<u32>]) -> bool {
        let mut ti = 0usize;
        'outer: for element in pattern {
            while ti < seq.len() {
                let txn = &seq[ti];
                ti += 1;
                if dm_dataset::transactions::is_subset_sorted(element, txn) {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// Number of customers whose sequence contains `pattern`.
    pub fn support_count(&self, pattern: &[Vec<u32>]) -> usize {
        self.iter()
            .filter(|seq| Self::contains(seq, pattern))
            .count()
    }

    /// Resolves a fractional support to an absolute customer count.
    pub fn min_support_count(&self, min_support: f64) -> Result<usize, DataError> {
        if !(min_support > 0.0 && min_support <= 1.0) {
            return Err(DataError::InvalidParameter(format!(
                "support fraction {min_support} not in (0, 1]"
            )));
        }
        Ok(((min_support * self.len() as f64).ceil() as usize).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SequenceDb {
        // The ICDE'95 running example (customer sequences).
        SequenceDb::new(vec![
            vec![vec![30], vec![90]],
            vec![vec![10, 20], vec![30], vec![40, 60, 70]],
            vec![vec![30, 50, 70]],
            vec![vec![30], vec![40, 70], vec![90]],
            vec![vec![90]],
        ])
    }

    #[test]
    fn construction_normalizes() {
        let db = SequenceDb::new(vec![vec![vec![3, 1, 3], vec![], vec![2]]]);
        assert_eq!(db.sequence(0), &vec![vec![1, 3], vec![2]]);
        assert_eq!(db.n_items(), 4);
    }

    #[test]
    fn containment_semantics() {
        let seq = vec![vec![1, 2], vec![3], vec![2, 4]];
        assert!(SequenceDb::contains(&seq, &[vec![1], vec![3]]));
        assert!(SequenceDb::contains(&seq, &[vec![1, 2], vec![2, 4]]));
        assert!(SequenceDb::contains(&seq, &[vec![3]]));
        // Order matters.
        assert!(!SequenceDb::contains(&seq, &[vec![3], vec![1]]));
        // Two elements may not map to the same transaction...
        assert!(!SequenceDb::contains(&seq, &[vec![4], vec![4]]));
        // ...but can map to distinct ones holding the same item.
        assert!(SequenceDb::contains(&seq, &[vec![2], vec![2]])); // txns 0 and 2
                                                                  // Empty pattern is contained everywhere.
        assert!(SequenceDb::contains(&seq, &[]));
    }

    #[test]
    fn paper_supports() {
        let db = db();
        // <(30)(90)> is supported by customers 1 and 4.
        assert_eq!(db.support_count(&[vec![30], vec![90]]), 2);
        // <(30)(40 70)> by customers 2 and 4.
        assert_eq!(db.support_count(&[vec![30], vec![40, 70]]), 2);
        // <(90)> by customers 1, 4, 5.
        assert_eq!(db.support_count(&[vec![90]]), 3);
        // <(30)> by 1, 2, 3, 4.
        assert_eq!(db.support_count(&[vec![30]]), 4);
    }

    #[test]
    fn min_support_resolution() {
        let db = db();
        assert_eq!(db.min_support_count(0.25).unwrap(), 2);
        assert_eq!(db.min_support_count(1.0).unwrap(), 5);
        assert!(db.min_support_count(0.0).is_err());
        assert!(db.min_support_count(1.5).is_err());
    }
}
