//! Quest-style synthetic customer-sequence generator.
//!
//! Follows the structure of the ICDE'95 data generator (`C|C|.T|T|.
//! S|S|.I|I|` datasets): a pool of *maximal potential sequences* — each a
//! short sequence of small itemsets — is drawn with exponential weights;
//! every customer interleaves one or two weighted pattern sequences with
//! uniform noise items across a Poisson number of transactions.

use crate::{CustomerSequence, SequenceDb};
use dm_dataset::DataError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the sequence generator.
#[derive(Debug, Clone)]
pub struct SequenceConfig {
    /// `|C|` — number of customers.
    pub n_customers: usize,
    /// Average transactions per customer (Poisson mean).
    pub avg_txns_per_customer: f64,
    /// Average items per transaction (Poisson mean).
    pub avg_txn_len: f64,
    /// `|S|` — average elements per potential pattern sequence.
    pub avg_pattern_elements: f64,
    /// `|I|` — average items per pattern element.
    pub avg_element_len: f64,
    /// Number of potential pattern sequences in the pool.
    pub n_patterns: usize,
    /// Item universe size.
    pub n_items: u32,
}

impl SequenceConfig {
    /// A small default in the spirit of the paper's C10.T2.5.S4.I1.25.
    pub fn standard(n_customers: usize) -> Self {
        Self {
            n_customers,
            avg_txns_per_customer: 6.0,
            avg_txn_len: 2.5,
            avg_pattern_elements: 3.0,
            avg_element_len: 1.5,
            n_patterns: 30,
            n_items: 200,
        }
    }

    fn validate(&self) -> Result<(), DataError> {
        if self.n_customers == 0 || self.n_patterns == 0 || self.n_items == 0 {
            return Err(DataError::InvalidParameter(
                "customers, patterns and items must be positive".into(),
            ));
        }
        if self.avg_txns_per_customer <= 0.0
            || self.avg_txn_len <= 0.0
            || self.avg_pattern_elements <= 0.0
            || self.avg_element_len <= 0.0
        {
            return Err(DataError::InvalidParameter(
                "all averages must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Generator holding the pattern pool.
#[derive(Debug, Clone)]
pub struct SequenceGenerator {
    config: SequenceConfig,
    patterns: Vec<Vec<Vec<u32>>>,
    weights: Vec<f64>,
}

/// Poisson sampler (duplicated from `dm-synth` to keep the crate graphs
/// of the two generator crates independent; both are Knuth's method).
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

impl SequenceGenerator {
    /// Builds the pattern pool deterministically from `seed`.
    pub fn new(config: SequenceConfig, seed: u64) -> Result<Self, DataError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut patterns = Vec::with_capacity(config.n_patterns);
        let mut weights = Vec::with_capacity(config.n_patterns);
        let mut total = 0.0f64;
        for _ in 0..config.n_patterns {
            let n_elements =
                (poisson(&mut rng, config.avg_pattern_elements).max(1) as usize).min(8);
            let mut pattern = Vec::with_capacity(n_elements);
            for _ in 0..n_elements {
                let len = (poisson(&mut rng, config.avg_element_len).max(1) as usize)
                    .min(config.n_items as usize);
                let mut element: Vec<u32> = Vec::with_capacity(len);
                while element.len() < len {
                    let item = rng.gen_range(0..config.n_items);
                    if !element.contains(&item) {
                        element.push(item);
                    }
                }
                element.sort_unstable();
                pattern.push(element);
            }
            let w = -(1.0 - rng.gen::<f64>()).ln(); // Exp(1)
            total += w;
            patterns.push(pattern);
            weights.push(w);
        }
        for w in &mut weights {
            *w /= total;
        }
        Ok(Self {
            config,
            patterns,
            weights,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SequenceConfig {
        &self.config
    }

    fn pick_pattern<R: Rng + ?Sized>(&self, rng: &mut R) -> &[Vec<u32>] {
        let mut x = rng.gen::<f64>();
        for (p, &w) in self.patterns.iter().zip(&self.weights) {
            x -= w;
            if x <= 0.0 {
                return p;
            }
        }
        // The constructor rejects an empty pattern pool, so the rounding
        // fall-through always has a last pattern to return.
        self.patterns.last().map_or(&[], Vec::as_slice)
    }

    /// Generates the customer-sequence database.
    pub fn generate(&self, seed: u64) -> SequenceDb {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut customers: Vec<CustomerSequence> = Vec::with_capacity(self.config.n_customers);
        for _ in 0..self.config.n_customers {
            let n_txns = (poisson(&mut rng, self.config.avg_txns_per_customer).max(1)) as usize;
            let mut txns: Vec<Vec<u32>> = vec![Vec::new(); n_txns];
            // Weave in one or two pattern sequences at random offsets.
            let n_weave = 1 + usize::from(rng.gen::<f64>() < 0.5);
            for _ in 0..n_weave {
                let pattern = self.pick_pattern(&mut rng).to_vec();
                if pattern.len() > n_txns {
                    continue;
                }
                // Choose an increasing sequence of txn slots.
                let mut slots: Vec<usize> = (0..n_txns).collect();
                for i in (1..slots.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    slots.swap(i, j);
                }
                slots.truncate(pattern.len());
                slots.sort_unstable();
                for (slot, element) in slots.into_iter().zip(&pattern) {
                    txns[slot].extend_from_slice(element);
                }
            }
            // Noise items up to the Poisson transaction length.
            for txn in &mut txns {
                let target = (poisson(&mut rng, self.config.avg_txn_len).max(1)) as usize;
                while txn.len() < target {
                    txn.push(rng.gen_range(0..self.config.n_items));
                }
            }
            customers.push(txns);
        }
        SequenceDb::new(customers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AprioriAll;

    #[test]
    fn shapes_and_determinism() {
        let g = SequenceGenerator::new(SequenceConfig::standard(200), 3).unwrap();
        let a = g.generate(4);
        let b = g.generate(4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.mean_len() > 2.0 && a.mean_len() < 12.0);
        assert_ne!(a, g.generate(5));
    }

    #[test]
    fn planted_patterns_are_mined() {
        // With strong weights, at least one multi-element pattern should
        // exceed 5% customer support.
        let g = SequenceGenerator::new(SequenceConfig::standard(400), 7).unwrap();
        let db = g.generate(8);
        let result = AprioriAll::new(0.05).mine(&db).unwrap();
        assert!(
            result.patterns.iter().any(|p| p.elements.len() >= 2),
            "no multi-element pattern found: {:?}",
            result.frequent_per_length
        );
    }

    #[test]
    fn validation() {
        let mut c = SequenceConfig::standard(10);
        c.n_items = 0;
        assert!(SequenceGenerator::new(c, 0).is_err());
        let mut c = SequenceConfig::standard(10);
        c.avg_txn_len = 0.0;
        assert!(SequenceGenerator::new(c, 0).is_err());
        let mut c = SequenceConfig::standard(0);
        c.n_customers = 0;
        assert!(SequenceGenerator::new(c, 0).is_err());
    }
}
