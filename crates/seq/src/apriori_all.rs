//! The AprioriAll algorithm (Agrawal & Srikant, ICDE 1995).
//!
//! Five phases, per the paper:
//!
//! 1. **Sort phase** — implicit here (the [`crate::SequenceDb`] is
//!    already grouped by customer and time-ordered).
//! 2. **Litemset phase** — find the *large itemsets*: itemsets contained
//!    in a single transaction of at least `minsup` customers. This is a
//!    frequent-itemset problem with per-customer (not per-transaction)
//!    support, mined here with a customer-deduplicated Apriori.
//! 3. **Transformation phase** — replace every transaction by the set of
//!    litemset ids it contains; drop empty transactions/customers.
//! 4. **Sequence phase** — apriori-style level-wise search over
//!    *sequences of litemset ids*: candidates of length `k` are joined
//!    from frequent `(k-1)`-sequences and pruned by the
//!    all-subsequences-frequent condition.
//! 5. **Maximal phase** — optionally discard patterns contained in a
//!    longer frequent pattern.

use crate::SequenceDb;
use dm_dataset::transactions::is_subset_sorted;
use dm_dataset::DataError;
use dm_guard::{Guard, Outcome, TruncationReason};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Customers / candidates scanned between guard polls.
const POLL_STRIDE: usize = 256;

/// A mined sequential pattern with its customer support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentialPattern {
    /// The pattern's elements: a time-ordered list of sorted itemsets.
    pub elements: Vec<Vec<u32>>,
    /// Number of supporting customers.
    pub support_count: usize,
}

/// Result of a sequential-pattern mining run.
#[derive(Debug, Clone)]
pub struct SeqMiningResult {
    /// Frequent sequential patterns (maximal only, unless configured
    /// otherwise), ordered by length then lexicographically.
    pub patterns: Vec<SequentialPattern>,
    /// Number of large itemsets found in phase 2.
    pub n_litemsets: usize,
    /// Per-sequence-length counts of frequent sequences (index 0 =
    /// length 1), before the maximal filter.
    pub frequent_per_length: Vec<usize>,
    /// Total wall-clock time.
    pub duration: Duration,
}

/// The AprioriAll miner.
#[derive(Debug, Clone)]
pub struct AprioriAll {
    min_support: f64,
    max_len: Option<usize>,
    maximal_only: bool,
}

impl AprioriAll {
    /// Creates a miner with fractional customer support `minsup`.
    pub fn new(min_support: f64) -> Self {
        Self {
            min_support,
            max_len: None,
            maximal_only: true,
        }
    }

    /// Caps pattern length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// Keep *all* frequent patterns, not just the maximal ones.
    pub fn keep_non_maximal(mut self) -> Self {
        self.maximal_only = false;
        self
    }

    /// Mines `db` to completion (an unlimited [`Guard`]).
    pub fn mine(&self, db: &SequenceDb) -> Result<SeqMiningResult, DataError> {
        Ok(self.mine_governed(db, &Guard::unlimited())?.result)
    }

    /// Mines `db` under a resource [`Guard`].
    ///
    /// A work unit is one candidate (litemset or sequence) admitted to
    /// support counting. A trip inside the litemset or transformation
    /// phase yields an empty (but valid) result; a trip inside the
    /// sequence phase discards the level in flight, so the reported
    /// patterns come from fully counted levels only. Because a maximal
    /// pattern of a *partial* run need not be maximal in the full run,
    /// truncated results skip the maximal filter: they are a subset of
    /// the ungoverned [`AprioriAll::keep_non_maximal`] pattern set.
    pub fn mine_governed(
        &self,
        db: &SequenceDb,
        guard: &Guard,
    ) -> Result<Outcome<SeqMiningResult>, DataError> {
        let t0 = Instant::now();
        let min_count = db.min_support_count(self.min_support)?;
        let obs = guard.obs();
        // Live span over the whole mine; the phase spans below nest
        // under it, so a trace shows litemset → transform → level time.
        let mine_span = obs.span("seq.apriori_all.mine");

        let mut n_litemsets = 0usize;
        let mut frequent: Vec<Vec<(Vec<u32>, usize)>> = Vec::new();
        let mut litemsets: Vec<Vec<u32>> = Vec::new();
        'mine: {
            // ---- Phase 2: litemsets under customer support. ----
            let lit_span = obs.span("seq.apriori_all.litemset_phase");
            let Ok(lits) = mine_litemsets(db, min_count, guard) else {
                break 'mine;
            };
            drop(lit_span);
            litemsets = lits;
            n_litemsets = litemsets.len();
            if n_litemsets == 0 {
                break 'mine;
            }
            // ---- Phase 3: transform customers to litemset-id sequences. ----
            // Each transaction becomes the sorted set of litemset ids it
            // contains (note: a transaction can contain several litemsets).
            let transform_span = obs.span("seq.apriori_all.transform_phase");
            let mut transformed: Vec<Vec<Vec<u32>>> = Vec::new();
            for (ci, seq) in db.iter().enumerate() {
                if ci.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    break 'mine;
                }
                let ids_seq: Vec<Vec<u32>> = seq
                    .iter()
                    .map(|txn| {
                        litemsets
                            .iter()
                            .enumerate()
                            .filter(|(_, l)| is_subset_sorted(l, txn))
                            .map(|(id, _)| id as u32)
                            .collect::<Vec<u32>>()
                    })
                    .filter(|ids| !ids.is_empty())
                    .collect();
                if !ids_seq.is_empty() {
                    transformed.push(ids_seq);
                }
            }

            drop(transform_span);

            // ---- Phase 4: level-wise sequence mining over litemset ids. ----
            // L1: every litemset is frequent by construction.
            if guard.try_work(n_litemsets as u64).is_err() {
                break 'mine;
            }
            let l1: Vec<(Vec<u32>, usize)> = (0..n_litemsets as u32)
                .map(|id| {
                    let count = transformed
                        .iter()
                        .filter(|seq| seq.iter().any(|txn| txn.binary_search(&id).is_ok()))
                        .count();
                    (vec![id], count)
                })
                .filter(|&(_, c)| c >= min_count)
                .collect();
            frequent.push(l1);

            let mut k = 1usize;
            while !frequent[k - 1].is_empty() && self.max_len.is_none_or(|m| k < m) {
                let _pass_span = obs.span_fmt(format_args!("seq.apriori_all.pass{}", k + 1));
                let prev: Vec<&[u32]> = frequent[k - 1].iter().map(|(s, _)| s.as_slice()).collect();
                let prev_set: HashSet<&[u32]> = prev.iter().copied().collect();
                // Join: s1 (drop first) == s2 (drop last) -> s1 + last(s2).
                // For k == 1 this degenerates to all ordered pairs (including
                // repeats), per the paper.
                let mut candidates: Vec<Vec<u32>> = Vec::new();
                for s1 in &prev {
                    for s2 in &prev {
                        if s1[1..] == s2[..k - 1] {
                            let mut cand = s1.to_vec();
                            cand.push(s2[k - 1]);
                            // Prune: all k-subsequences frequent.
                            if subsequences_frequent(&cand, &prev_set) {
                                candidates.push(cand);
                            }
                        }
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                if guard.try_work(candidates.len() as u64).is_err() {
                    break 'mine;
                }
                // Count candidate sequences against the transformed database.
                let mut lk: Vec<(Vec<u32>, usize)> = Vec::new();
                for (c, cand) in candidates.into_iter().enumerate() {
                    if c.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                        break 'mine;
                    }
                    let count = transformed
                        .iter()
                        .filter(|seq| contains_id_sequence(seq, &cand))
                        .count();
                    if count >= min_count {
                        lk.push((cand, count));
                    }
                }
                lk.sort();
                let done = lk.is_empty();
                frequent.push(lk);
                k += 1;
                if done {
                    break;
                }
            }
        }
        while frequent.last().is_some_and(Vec::is_empty) {
            frequent.pop();
        }
        let frequent_per_length: Vec<usize> = frequent.iter().map(Vec::len).collect();

        // ---- Phase 5: map ids back to itemsets, then maximal filter.
        // Containment is checked at the itemset level: <(40)> is
        // contained in <(30)(40 70)> even though their litemset ids
        // differ — the id-sequence view would miss that.
        let mut materialized: Vec<(Vec<Vec<u32>>, usize)> = frequent
            .iter()
            .flatten()
            .map(|(seq, count)| {
                (
                    seq.iter()
                        .map(|&id| litemsets[id as usize].clone())
                        .collect::<Vec<Vec<u32>>>(),
                    *count,
                )
            })
            .collect();
        // Containers first so the keep-list only needs one pass: if p is
        // properly contained in q then p has no more elements and
        // strictly fewer total items (equal counts force p == q), so
        // (element count desc, item count desc) orders q before p.
        let item_count = |p: &[Vec<u32>]| p.iter().map(Vec::len).sum::<usize>();
        materialized.sort_by(|a, b| {
            b.0.len()
                .cmp(&a.0.len())
                .then(item_count(&b.0).cmp(&item_count(&a.0)))
                .then(a.0.cmp(&b.0))
        });
        // A truncated run keeps every frequent pattern: filtering for
        // maximality against an incomplete pattern set would report
        // "maximal" patterns the full run subsumes.
        let filter_maximal = self.maximal_only && guard.status().is_complete();
        let mut kept: Vec<(Vec<Vec<u32>>, usize)> = Vec::new();
        for (elements, count) in materialized {
            let is_max = !filter_maximal
                || !kept
                    .iter()
                    .any(|(longer, _)| pattern_contained(&elements, longer));
            if is_max {
                kept.push((elements, count));
            }
        }
        kept.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then(a.0.cmp(&b.0)));
        let patterns = kept
            .into_iter()
            .map(|(elements, support_count)| SequentialPattern {
                elements,
                support_count,
            })
            .collect();

        if obs.enabled() {
            obs.counter("seq.apriori_all.litemsets", n_litemsets as u64);
            for (i, &n) in frequent_per_length.iter().enumerate() {
                obs.counter_fmt(
                    format_args!("seq.apriori_all.len{}.frequent", i + 1),
                    n as u64,
                );
            }
        }
        drop(mine_span);
        Ok(guard.outcome(SeqMiningResult {
            patterns,
            n_litemsets,
            frequent_per_length,
            duration: t0.elapsed(),
        }))
    }
}

/// Litemset phase: frequent itemsets where support counts *customers*
/// containing the itemset in any single transaction. Level-wise with
/// `apriori-gen`, counting each customer at most once per itemset.
fn mine_litemsets(
    db: &SequenceDb,
    min_count: usize,
    guard: &Guard,
) -> Result<Vec<Vec<u32>>, TruncationReason> {
    // Pass 1: customer-deduplicated item counts.
    let n_items = db.n_items() as usize;
    guard.try_work(n_items as u64)?;
    let mut counts = vec![0usize; n_items];
    let mut seen = vec![u32::MAX; n_items];
    for (ci, seq) in db.iter().enumerate() {
        if ci.is_multiple_of(POLL_STRIDE) {
            guard.check()?;
        }
        for txn in seq {
            for &item in txn {
                if seen[item as usize] != ci as u32 {
                    seen[item as usize] = ci as u32;
                    counts[item as usize] += 1;
                }
            }
        }
    }
    let mut level: Vec<Vec<u32>> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(item, _)| vec![item as u32])
        .collect();
    let mut all: Vec<Vec<u32>> = level.clone();

    while level.len() > 1 {
        let candidates = dm_assoc::candidate::apriori_gen(&level);
        if candidates.is_empty() {
            break;
        }
        guard.try_work(candidates.len() as u64)?;
        let mut next = Vec::new();
        for (c, cand) in candidates.into_iter().enumerate() {
            if c.is_multiple_of(POLL_STRIDE) {
                guard.check()?;
            }
            let count = db
                .iter()
                .filter(|seq| seq.iter().any(|txn| is_subset_sorted(&cand, txn)))
                .count();
            if count >= min_count {
                next.push(cand);
            }
        }
        next.sort();
        if next.is_empty() {
            break;
        }
        all.extend(next.iter().cloned());
        level = next;
    }
    all.sort();
    Ok(all)
}

/// Whether each of the ids of `pattern` appears, in order, in distinct
/// transactions of the transformed sequence.
fn contains_id_sequence(seq: &[Vec<u32>], pattern: &[u32]) -> bool {
    let mut ti = 0usize;
    'outer: for &id in pattern {
        while ti < seq.len() {
            let txn = &seq[ti];
            ti += 1;
            if txn.binary_search(&id).is_ok() {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Whether all (k-1)-subsequences of `cand` are frequent.
fn subsequences_frequent(cand: &[u32], frequent: &HashSet<&[u32]>) -> bool {
    let mut sub: Vec<u32> = Vec::with_capacity(cand.len() - 1);
    for skip in 0..cand.len() {
        sub.clear();
        sub.extend(
            cand.iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &x)| x),
        );
        if !frequent.contains(sub.as_slice()) {
            return false;
        }
    }
    true
}

/// Whether pattern `p` is contained in pattern `q` at the itemset level:
/// each element of `p` must be a subset of a distinct, in-order element
/// of `q`. A pattern is contained in itself only if they are equal-length
/// with element-wise subsets — callers exclude identity by construction
/// (maximal filtering compares against strictly longer patterns or
/// supersets).
fn pattern_contained(p: &[Vec<u32>], q: &[Vec<u32>]) -> bool {
    if p.len() > q.len() || p == q {
        return false;
    }
    let mut qi = 0usize;
    'outer: for element in p {
        while qi < q.len() {
            let candidate = &q[qi];
            qi += 1;
            if is_subset_sorted(element, candidate) {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ICDE'95 running example.
    fn paper_db() -> SequenceDb {
        SequenceDb::new(vec![
            vec![vec![30], vec![90]],
            vec![vec![10, 20], vec![30], vec![40, 60, 70]],
            vec![vec![30, 50, 70]],
            vec![vec![30], vec![40, 70], vec![90]],
            vec![vec![90]],
        ])
    }

    #[test]
    fn reproduces_the_paper_example() {
        // With minsup 25% (2 of 5 customers) the paper reports the
        // maximal sequential patterns <(30)(90)> and <(30)(40 70)>.
        let result = AprioriAll::new(0.25).mine(&paper_db()).unwrap();
        let patterns: Vec<&Vec<Vec<u32>>> = result.patterns.iter().map(|p| &p.elements).collect();
        assert!(
            patterns.contains(&&vec![vec![30], vec![90]]),
            "{patterns:?}"
        );
        assert!(
            patterns.contains(&&vec![vec![30], vec![40, 70]]),
            "{patterns:?}"
        );
        // Non-maximal patterns like <(30)> must have been filtered.
        assert!(!patterns.contains(&&vec![vec![30]]));
        // Supports are customer counts.
        for p in &result.patterns {
            assert_eq!(
                p.support_count,
                paper_db().support_count(&p.elements),
                "{:?}",
                p.elements
            );
            assert!(p.support_count >= 2);
        }
    }

    #[test]
    fn keep_non_maximal_includes_subpatterns() {
        let result = AprioriAll::new(0.25)
            .keep_non_maximal()
            .mine(&paper_db())
            .unwrap();
        let patterns: Vec<&Vec<Vec<u32>>> = result.patterns.iter().map(|p| &p.elements).collect();
        assert!(patterns.contains(&&vec![vec![30]]));
        assert!(patterns.contains(&&vec![vec![90]]));
        assert!(patterns.contains(&&vec![vec![30], vec![90]]));
    }

    #[test]
    fn litemset_support_counts_customers_not_transactions() {
        // Item 7 occurs twice inside one customer: support must be 1.
        let db = SequenceDb::new(vec![vec![vec![7], vec![7], vec![7]], vec![vec![1]]]);
        let lits = mine_litemsets(&db, 1, &Guard::unlimited()).unwrap();
        assert!(lits.contains(&vec![7]));
        let result = AprioriAll::new(0.9).mine(&db).unwrap();
        // At 90% support (2 customers) nothing survives.
        assert!(result.patterns.is_empty());
    }

    #[test]
    fn max_len_caps_patterns() {
        let result = AprioriAll::new(0.25)
            .with_max_len(1)
            .mine(&paper_db())
            .unwrap();
        assert!(result.patterns.iter().all(|p| p.elements.len() == 1));
    }

    #[test]
    fn empty_db_and_hopeless_threshold() {
        let empty = SequenceDb::new(vec![]);
        assert!(AprioriAll::new(0.5).mine(&empty).is_ok());
        let db = paper_db();
        let result = AprioriAll::new(1.0).mine(&db).unwrap();
        assert!(result.patterns.is_empty());
        assert!(AprioriAll::new(0.0).mine(&db).is_err());
    }

    #[test]
    fn repeated_litemset_sequences_found() {
        // "buy 1, later buy 1 again" — requires the k=1 self-join.
        let db = SequenceDb::new(vec![
            vec![vec![1], vec![1]],
            vec![vec![1], vec![2], vec![1]],
            vec![vec![1]],
        ]);
        let result = AprioriAll::new(0.6).mine(&db).unwrap();
        let patterns: Vec<&Vec<Vec<u32>>> = result.patterns.iter().map(|p| &p.elements).collect();
        assert!(patterns.contains(&&vec![vec![1], vec![1]]), "{patterns:?}");
    }

    #[test]
    fn helpers() {
        assert!(pattern_contained(&[vec![40]], &[vec![30], vec![40, 70]]));
        assert!(pattern_contained(
            &[vec![30], vec![40]],
            &[vec![30], vec![40, 70]]
        ));
        assert!(!pattern_contained(
            &[vec![40], vec![30]],
            &[vec![30], vec![40, 70]]
        ));
        let same = [vec![1u32], vec![2]];
        assert!(!pattern_contained(&same, &same), "identity excluded");
        assert!(contains_id_sequence(&[vec![0, 1], vec![2]], &[1, 2]));
        assert!(!contains_id_sequence(&[vec![0, 1]], &[1, 1]));
    }

    #[test]
    fn governed_budget_yields_subset_of_non_maximal_run() {
        use dm_guard::{Budget, RunStatus};
        let db = paper_db();
        let full = AprioriAll::new(0.25).keep_non_maximal().mine(&db).unwrap();
        for max_work in [0u64, 50, 100, 150, 10_000] {
            let guard = Guard::new(Budget::unlimited().with_max_work(max_work));
            let out = AprioriAll::new(0.25).mine_governed(&db, &guard).unwrap();
            assert!(guard.work_done() <= max_work, "max_work {max_work}");
            match out.status {
                RunStatus::Complete => {
                    let plain = AprioriAll::new(0.25).mine(&db).unwrap();
                    assert_eq!(out.result.patterns, plain.patterns);
                }
                RunStatus::Truncated(_) => {
                    for p in &out.result.patterns {
                        assert!(
                            full.patterns.contains(p),
                            "truncated pattern {:?} absent from ungoverned run",
                            p.elements
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn governed_cancellation_and_unlimited_identity() {
        use dm_guard::{Budget, CancelToken, RunStatus, TruncationReason};
        let db = paper_db();
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(Budget::unlimited(), token);
        let out = AprioriAll::new(0.25).mine_governed(&db, &guard).unwrap();
        assert_eq!(
            out.status,
            RunStatus::Truncated(TruncationReason::Cancelled)
        );
        assert!(out.result.patterns.is_empty());

        let plain = AprioriAll::new(0.25).mine(&db).unwrap();
        let governed = AprioriAll::new(0.25)
            .mine_governed(&db, &Guard::unlimited())
            .unwrap();
        assert!(governed.is_complete());
        assert_eq!(governed.result.patterns, plain.patterns);
    }

    #[test]
    fn maximal_filter_sees_element_subsets() {
        // <(40 70)> (one element) is contained in <(30)(40 70)> and must
        // not be reported as maximal.
        let result = AprioriAll::new(0.25).mine(&paper_db()).unwrap();
        let patterns: Vec<&Vec<Vec<u32>>> = result.patterns.iter().map(|p| &p.elements).collect();
        assert!(!patterns.contains(&&vec![vec![40, 70]]), "{patterns:?}");
        assert!(!patterns.contains(&&vec![vec![40]]), "{patterns:?}");
    }
}
