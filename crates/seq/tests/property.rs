//! Property tests: AprioriAll must agree with the exhaustive oracle on
//! arbitrary small sequence databases.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_seq::{brute::assert_matches_oracle, AprioriAll, SequenceDb};
use proptest::prelude::*;

/// Up to 12 customers, up to 4 transactions each, over 6 items.
fn small_seq_db() -> impl Strategy<Value = SequenceDb> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u32..6, 1..4), 1..5),
        1..12,
    )
    .prop_map(SequenceDb::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn apriori_all_matches_oracle(db in small_seq_db(), pct in 2usize..8) {
        let minsup = pct as f64 / 10.0;
        assert_matches_oracle(&db, minsup, 3);
    }

    #[test]
    fn supports_match_direct_counting(db in small_seq_db()) {
        let result = AprioriAll::new(0.3).keep_non_maximal().mine(&db).unwrap();
        for p in &result.patterns {
            prop_assert_eq!(p.support_count, db.support_count(&p.elements));
        }
    }

    #[test]
    fn maximal_patterns_are_mutually_incomparable(db in small_seq_db()) {
        let result = AprioriAll::new(0.3).mine(&db).unwrap();
        for (i, a) in result.patterns.iter().enumerate() {
            for (j, b) in result.patterns.iter().enumerate() {
                if i == j { continue; }
                // No maximal pattern properly contained in another.
                let contained = a.elements.len() <= b.elements.len() && {
                    let mut qi = 0usize;
                    let mut ok = true;
                    'outer: for e in &a.elements {
                        while qi < b.elements.len() {
                            let c = &b.elements[qi];
                            qi += 1;
                            if dm_dataset::transactions::is_subset_sorted(e, c) {
                                continue 'outer;
                            }
                        }
                        ok = false;
                        break;
                    }
                    ok && a.elements != b.elements
                };
                prop_assert!(!contained, "{:?} contained in {:?}", a.elements, b.elements);
            }
        }
    }
}
