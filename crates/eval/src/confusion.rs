//! Multi-class confusion matrices and derived classification scores.

use dm_dataset::DataError;
use std::fmt;

/// A `k × k` confusion matrix: `count(true class, predicted class)`.
///
/// Rows index the true class, columns the predicted class — the layout
/// used throughout the classic literature and this repository's
/// experiment printouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>, // row-major k*k
}

impl ConfusionMatrix {
    /// Builds a confusion matrix over `n_classes` classes from parallel
    /// truth/prediction slices.
    pub fn from_labels(
        n_classes: usize,
        truth: &[u32],
        predicted: &[u32],
    ) -> Result<Self, DataError> {
        if truth.len() != predicted.len() {
            return Err(DataError::LabelLengthMismatch {
                labels: predicted.len(),
                rows: truth.len(),
            });
        }
        if n_classes == 0 {
            return Err(DataError::InvalidParameter(
                "confusion matrix needs at least one class".into(),
            ));
        }
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&t, &p) in truth.iter().zip(predicted) {
            let (t, p) = (t as usize, p as usize);
            if t >= n_classes || p >= n_classes {
                return Err(DataError::InvalidParameter(format!(
                    "label ({t}, {p}) out of range for {n_classes} classes"
                )));
            }
            counts[t * n_classes + p] += 1;
        }
        Ok(Self {
            k: n_classes,
            counts,
        })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Count of rows with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.k + p]
    }

    /// Total number of scored rows.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.k).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c` (`tp / (tp + fp)`); 0 when the class is
    /// never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.count(c, c);
        let predicted: usize = (0..self.k).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of class `c` (`tp / (tp + fn)`); 0 when the class never
    /// occurs in the truth.
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.count(c, c);
        let actual: usize = (0..self.k).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score of class `c`; 0 when precision + recall is 0.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class precisions.
    pub fn macro_precision(&self) -> f64 {
        (0..self.k).map(|c| self.precision(c)).sum::<f64>() / self.k as f64
    }

    /// Unweighted mean of per-class recalls.
    pub fn macro_recall(&self) -> f64 {
        (0..self.k).map(|c| self.recall(c)).sum::<f64>() / self.k as f64
    }

    /// Unweighted mean of per-class F1 scores.
    pub fn macro_f1(&self) -> f64 {
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }

    /// Per-true-class row-normalized rates (the "heat-map" view used in
    /// the experiment printouts): entry `(t, p)` is `count(t,p) /
    /// row_total(t)`, or 0 for empty rows.
    pub fn normalized_rows(&self) -> Vec<Vec<f64>> {
        (0..self.k)
            .map(|t| {
                let row_total: usize = (0..self.k).map(|p| self.count(t, p)).sum();
                (0..self.k)
                    .map(|p| {
                        if row_total == 0 {
                            0.0
                        } else {
                            self.count(t, p) as f64 / row_total as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Cohen's kappa: chance-corrected agreement,
    /// `(p_o − p_e) / (1 − p_e)` where `p_o` is accuracy and `p_e` the
    /// agreement expected from the marginals. 1 = perfect, 0 = chance
    /// level, negative = worse than chance. Defined as 0 when the
    /// expected agreement is already 1 (degenerate marginals).
    pub fn kappa(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = total as f64;
        let po = self.accuracy();
        let mut pe = 0.0;
        for c in 0..self.k {
            let row: usize = (0..self.k).map(|p| self.count(c, p)).sum();
            let col: usize = (0..self.k).map(|t| self.count(t, c)).sum();
            pe += (row as f64 / n) * (col as f64 / n);
        }
        if (1.0 - pe).abs() < 1e-15 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }

    /// Merges another confusion matrix (e.g. from another CV fold) into
    /// this one. Both must have the same class count.
    pub fn merge(&mut self, other: &ConfusionMatrix) -> Result<(), DataError> {
        if self.k != other.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot merge {}-class and {}-class confusion matrices",
                self.k, other.k
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "true\\pred {}",
            (0..self.k).map(|p| format!("{p:>7}")).collect::<String>()
        )?;
        for t in 0..self.k {
            write!(f, "{t:>9} ")?;
            for p in 0..self.k {
                write!(f, "{:>7}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// truth:  0 0 0 1 1 2
    /// pred:   0 0 1 1 1 0
    fn cm() -> ConfusionMatrix {
        ConfusionMatrix::from_labels(3, &[0, 0, 0, 1, 1, 2], &[0, 0, 1, 1, 1, 0]).unwrap()
    }

    #[test]
    fn counts_and_total() {
        let m = cm();
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.count(2, 2), 0);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn accuracy() {
        assert!((cm().accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let m = cm();
        // class 0: tp=2, predicted as 0: 3 (two true 0s + one true 2)
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        // class 1: tp=2, predicted: 3, actual: 2
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(1) - 1.0).abs() < 1e-12);
        assert!((m.f1(1) - 0.8).abs() < 1e-12);
        // class 2 never predicted correctly
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
    }

    #[test]
    fn macro_scores() {
        let m = cm();
        assert!((m.macro_precision() - (2.0 / 3.0 + 2.0 / 3.0 + 0.0) / 3.0).abs() < 1e-12);
        assert!((m.macro_recall() - (2.0 / 3.0 + 1.0 + 0.0) / 3.0).abs() < 1e-12);
        assert!((m.macro_f1() - (2.0 / 3.0 + 0.8 + 0.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let m = cm();
        let rows = m.normalized_rows();
        for row in rows.iter().take(2) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!((rows[0][0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(ConfusionMatrix::from_labels(2, &[0], &[0, 1]).is_err());
        assert!(ConfusionMatrix::from_labels(0, &[], &[]).is_err());
        assert!(ConfusionMatrix::from_labels(2, &[2], &[0]).is_err());
        assert!(ConfusionMatrix::from_labels(2, &[0], &[2]).is_err());
    }

    #[test]
    fn empty_matrix_has_zero_accuracy() {
        let m = ConfusionMatrix::from_labels(2, &[], &[]).unwrap();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn merge_accumulates_folds() {
        let mut a = ConfusionMatrix::from_labels(2, &[0, 1], &[0, 1]).unwrap();
        let b = ConfusionMatrix::from_labels(2, &[0, 1], &[1, 1]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(0, 1), 1);
        assert!((a.accuracy() - 0.75).abs() < 1e-12);
        let c = ConfusionMatrix::from_labels(3, &[0], &[0]).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn perfect_prediction() {
        let m = ConfusionMatrix::from_labels(2, &[0, 1, 0], &[0, 1, 0]).unwrap();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn kappa_values() {
        // Perfect agreement.
        let m = ConfusionMatrix::from_labels(2, &[0, 1, 0, 1], &[0, 1, 0, 1]).unwrap();
        assert!((m.kappa() - 1.0).abs() < 1e-12);
        // Chance-level agreement: prediction independent of truth.
        let truth = [0u32, 0, 1, 1];
        let pred = [0u32, 1, 0, 1];
        let m = ConfusionMatrix::from_labels(2, &truth, &pred).unwrap();
        assert!(m.kappa().abs() < 1e-12, "kappa {}", m.kappa());
        // Degenerate marginals (everything one class): defined as 0.
        let m = ConfusionMatrix::from_labels(2, &[0, 0], &[0, 0]).unwrap();
        assert_eq!(m.kappa(), 0.0);
        // Empty.
        let m = ConfusionMatrix::from_labels(2, &[], &[]).unwrap();
        assert_eq!(m.kappa(), 0.0);
        // Worse than chance.
        let m = ConfusionMatrix::from_labels(2, &[0, 0, 1, 1], &[1, 1, 0, 0]).unwrap();
        assert!(m.kappa() < 0.0);
    }

    #[test]
    fn display_contains_counts() {
        let s = cm().to_string();
        assert!(s.contains('2'));
        assert!(s.lines().count() >= 4);
    }
}
