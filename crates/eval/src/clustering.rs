//! Clustering quality indices.
//!
//! External indices ([`adjusted_rand_index`],
//! [`normalized_mutual_information`], [`purity`]) compare a clustering
//! against ground-truth labels; internal indices ([`sse`],
//! [`silhouette`]) score a clustering from the data alone. Cluster ids in
//! the input slices are arbitrary `u32` values (they need not be dense).

// Numeric kernels below co-index several parallel arrays; indexed loops
// are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]
use dm_dataset::matrix::{euclidean, euclidean_sq};
use dm_dataset::{DataError, Matrix};
use std::collections::HashMap;

/// Builds the contingency table between two labelings, re-indexed densely.
fn contingency(a: &[u32], b: &[u32]) -> (Vec<Vec<usize>>, Vec<usize>, Vec<usize>) {
    let mut a_ids: HashMap<u32, usize> = HashMap::new();
    let mut b_ids: HashMap<u32, usize> = HashMap::new();
    for &x in a {
        let next = a_ids.len();
        a_ids.entry(x).or_insert(next);
    }
    for &x in b {
        let next = b_ids.len();
        b_ids.entry(x).or_insert(next);
    }
    let (ra, rb) = (a_ids.len(), b_ids.len());
    let mut table = vec![vec![0usize; rb]; ra];
    for (&x, &y) in a.iter().zip(b) {
        table[a_ids[&x]][b_ids[&y]] += 1;
    }
    let row_sums: Vec<usize> = table.iter().map(|r| r.iter().sum()).collect();
    let mut col_sums = vec![0usize; rb];
    for r in &table {
        for (c, &v) in col_sums.iter_mut().zip(r) {
            *c += v;
        }
    }
    (table, row_sums, col_sums)
}

fn choose2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Adjusted Rand index between two labelings (Hubert & Arabie 1985).
///
/// 1.0 for identical partitions (up to label permutation), ~0 for random
/// agreement, can be negative for worse-than-random.
pub fn adjusted_rand_index(truth: &[u32], pred: &[u32]) -> Result<f64, DataError> {
    if truth.len() != pred.len() {
        return Err(DataError::LabelLengthMismatch {
            labels: pred.len(),
            rows: truth.len(),
        });
    }
    if truth.is_empty() {
        return Err(DataError::Empty("label slice"));
    }
    let n = truth.len();
    let (table, rows, cols) = contingency(truth, pred);
    let sum_cells: f64 = table
        .iter()
        .flat_map(|r| r.iter())
        .map(|&v| choose2(v))
        .sum();
    let sum_rows: f64 = rows.iter().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = cols.iter().map(|&v| choose2(v)).sum();
    let expected = sum_rows * sum_cols / choose2(n).max(1.0);
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        // Both partitions are single-cluster (or equivalent degenerate
        // case): define ARI as 1 when identical, 0 otherwise.
        return Ok(if sum_cells == max_index { 1.0 } else { 0.0 });
    }
    Ok((sum_cells - expected) / (max_index - expected))
}

/// Normalized mutual information with arithmetic-mean normalization,
/// `NMI = 2·I(T;P) / (H(T) + H(P))`, in `[0, 1]`.
///
/// Defined as 1 when both partitions are trivial (zero entropy) and
/// identical in cluster count, else 0 for a trivial/informative pair.
pub fn normalized_mutual_information(truth: &[u32], pred: &[u32]) -> Result<f64, DataError> {
    if truth.len() != pred.len() {
        return Err(DataError::LabelLengthMismatch {
            labels: pred.len(),
            rows: truth.len(),
        });
    }
    if truth.is_empty() {
        return Err(DataError::Empty("label slice"));
    }
    let n = truth.len() as f64;
    let (table, rows, cols) = contingency(truth, pred);
    let h = |sums: &[usize]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ht = h(&rows);
    let hp = h(&cols);
    if ht == 0.0 && hp == 0.0 {
        return Ok(1.0);
    }
    if ht == 0.0 || hp == 0.0 {
        return Ok(0.0);
    }
    let mut mi = 0.0;
    for (i, r) in table.iter().enumerate() {
        for (j, &v) in r.iter().enumerate() {
            if v > 0 {
                let pij = v as f64 / n;
                let pi = rows[i] as f64 / n;
                let pj = cols[j] as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
    }
    Ok((2.0 * mi / (ht + hp)).clamp(0.0, 1.0))
}

/// Purity: each predicted cluster is assigned its majority true class;
/// purity is the fraction of points so matched. In `(0, 1]`, with 1 for
/// a clustering that never mixes classes.
pub fn purity(truth: &[u32], pred: &[u32]) -> Result<f64, DataError> {
    if truth.len() != pred.len() {
        return Err(DataError::LabelLengthMismatch {
            labels: pred.len(),
            rows: truth.len(),
        });
    }
    if truth.is_empty() {
        return Err(DataError::Empty("label slice"));
    }
    let (table, _, _) = contingency(pred, truth);
    let matched: usize = table
        .iter()
        .map(|r| r.iter().copied().max().unwrap_or(0))
        .sum();
    Ok(matched as f64 / truth.len() as f64)
}

/// Within-cluster sum of squared distances to each cluster's centroid.
///
/// `assignments[i]` is the cluster of row `i`; clusters may be any `u32`
/// ids. Empty input yields 0.
pub fn sse(data: &Matrix, assignments: &[u32]) -> Result<f64, DataError> {
    if data.rows() != assignments.len() {
        return Err(DataError::LabelLengthMismatch {
            labels: assignments.len(),
            rows: data.rows(),
        });
    }
    if data.rows() == 0 {
        return Ok(0.0);
    }
    let d = data.cols();
    let mut sums: HashMap<u32, (Vec<f64>, usize)> = HashMap::new();
    for (i, &c) in assignments.iter().enumerate() {
        let entry = sums.entry(c).or_insert_with(|| (vec![0.0; d], 0));
        for (s, &x) in entry.0.iter_mut().zip(data.row(i)) {
            *s += x;
        }
        entry.1 += 1;
    }
    let centroids: HashMap<u32, Vec<f64>> = sums
        .into_iter()
        .map(|(c, (mut s, n))| {
            for x in &mut s {
                *x /= n as f64;
            }
            (c, s)
        })
        .collect();
    let mut total = 0.0;
    for (i, &c) in assignments.iter().enumerate() {
        total += euclidean_sq(data.row(i), &centroids[&c]);
    }
    Ok(total)
}

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// O(n²); points in singleton clusters contribute 0 (the standard
/// convention). Errors when there are fewer than 2 clusters.
pub fn silhouette(data: &Matrix, assignments: &[u32]) -> Result<f64, DataError> {
    if data.rows() != assignments.len() {
        return Err(DataError::LabelLengthMismatch {
            labels: assignments.len(),
            rows: data.rows(),
        });
    }
    let n = data.rows();
    if n == 0 {
        return Err(DataError::Empty("matrix"));
    }
    let mut cluster_sizes: HashMap<u32, usize> = HashMap::new();
    for &c in assignments {
        *cluster_sizes.entry(c).or_insert(0) += 1;
    }
    if cluster_sizes.len() < 2 {
        return Err(DataError::InvalidParameter(
            "silhouette needs at least two clusters".into(),
        ));
    }
    let mut total = 0.0;
    for i in 0..n {
        let ci = assignments[i];
        if cluster_sizes[&ci] == 1 {
            continue; // contributes 0
        }
        // Mean distance to each cluster.
        let mut dist_sum: HashMap<u32, f64> = HashMap::new();
        for j in 0..n {
            if i == j {
                continue;
            }
            *dist_sum.entry(assignments[j]).or_insert(0.0) += euclidean(data.row(i), data.row(j));
        }
        let a = dist_sum.get(&ci).copied().unwrap_or(0.0) / (cluster_sizes[&ci] - 1) as f64;
        let b = dist_sum
            .iter()
            .filter(|(&c, _)| c != ci)
            .map(|(&c, &s)| s / cluster_sizes[&c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a < b {
            1.0 - a / b
        } else if a > b {
            b / a - 1.0
        } else {
            0.0
        };
        total += s;
    }
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ari_identical_partitions() {
        let t = [0u32, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        // Label permutation does not matter.
        let p = [5u32, 5, 9, 9, 0, 0];
        assert!((adjusted_rand_index(&t, &p).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_known_value() {
        // Classic worked example.
        let t = [0u32, 0, 0, 1, 1, 1];
        let p = [0u32, 0, 1, 1, 2, 2];
        let ari = adjusted_rand_index(&t, &p).unwrap();
        // Contingency [[2,1,0],[0,1,2]]: index=2, expected=4.8*7/15=2.24,
        // max=(4.8+7)/2 wait rows: C(3,2)*2=6... compute directly:
        // sum_cells = C(2,2)+C(1,2)+C(1,2)+C(2,2) = 1+0+0+1 = 2
        // sum_rows = 3+3 = 6, sum_cols = C(2,2)*3 = 3, n=6, C(6,2)=15
        // expected = 6*3/15 = 1.2, max = 4.5 -> ARI = (2-1.2)/(4.5-1.2)
        assert!((ari - 0.8 / 3.3).abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn ari_single_cluster_degenerate() {
        let t = [0u32, 0, 0];
        assert_eq!(adjusted_rand_index(&t, &t).unwrap(), 1.0);
        let p = [0u32, 1, 2];
        // all-singletons vs all-one: worse-than-chance degenerate pair -> 0
        assert_eq!(adjusted_rand_index(&t, &p).unwrap(), 0.0);
    }

    #[test]
    fn nmi_bounds_and_identity() {
        let t = [0u32, 0, 1, 1];
        assert!((normalized_mutual_information(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let indep = [0u32, 1, 0, 1];
        let v = normalized_mutual_information(&t, &indep).unwrap();
        assert!(v < 0.01, "independent labelings should give ~0, got {v}");
        let trivial = [7u32, 7, 7, 7];
        assert_eq!(normalized_mutual_information(&t, &trivial).unwrap(), 0.0);
        assert_eq!(
            normalized_mutual_information(&trivial, &trivial).unwrap(),
            1.0
        );
    }

    #[test]
    fn purity_examples() {
        let t = [0u32, 0, 1, 1];
        assert_eq!(purity(&t, &t).unwrap(), 1.0);
        let p = [0u32, 0, 0, 0];
        assert_eq!(purity(&t, &p).unwrap(), 0.5);
        // Over-clustering yields perfect purity (known caveat of the metric).
        let p = [0u32, 1, 2, 3];
        assert_eq!(purity(&t, &p).unwrap(), 1.0);
    }

    #[test]
    fn sse_hand_computed() {
        let m = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![10.0]]).unwrap();
        // cluster 0 = {0,2}, centroid 1 -> 1+1 = 2; cluster 1 = {10} -> 0
        let v = sse(&m, &[0, 0, 1]).unwrap();
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sse_zero_for_perfect_clusters() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![5.0, 5.0]]).unwrap();
        assert_eq!(sse(&m, &[0, 0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn sse_decreases_with_finer_clustering() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
        let coarse = sse(&m, &[0, 0, 0, 0]).unwrap();
        let fine = sse(&m, &[0, 0, 1, 1]).unwrap();
        assert!(fine < coarse);
    }

    #[test]
    fn silhouette_separated_vs_mixed() {
        let m = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]).unwrap();
        let good = silhouette(&m, &[0, 0, 1, 1]).unwrap();
        let bad = silhouette(&m, &[0, 1, 0, 1]).unwrap();
        assert!(good > 0.9, "good {good}");
        assert!(bad < 0.0, "bad {bad}");
    }

    #[test]
    fn silhouette_requires_two_clusters() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(silhouette(&m, &[0, 0]).is_err());
    }

    #[test]
    fn silhouette_singletons_contribute_zero() {
        let m = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![9.0]]).unwrap();
        let s = silhouette(&m, &[0, 0, 1]).unwrap();
        // Third point is a singleton: only the first two contribute.
        assert!(s > 0.5);
    }

    #[test]
    fn length_mismatches_rejected() {
        let m = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(sse(&m, &[0, 1]).is_err());
        assert!(silhouette(&m, &[]).is_err());
        assert!(adjusted_rand_index(&[0], &[0, 1]).is_err());
        assert!(normalized_mutual_information(&[0], &[]).is_err());
        assert!(purity(&[], &[]).is_err());
    }
}
