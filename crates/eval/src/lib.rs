//! # dm-eval
//!
//! Evaluation metrics for the `datamining` workspace:
//!
//! * [`confusion`] — multi-class confusion matrices and the
//!   classification scores derived from them (accuracy, per-class
//!   precision/recall/F1, macro averages).
//! * [`clustering`] — external indices comparing a clustering against
//!   ground truth (adjusted Rand index, normalized mutual information,
//!   purity) and internal indices (within-cluster sum of squares,
//!   silhouette coefficient).
//!
//! All metrics are plain functions over label slices / matrices so they
//! work with any model in the workspace.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod clustering;
pub mod confusion;

pub use clustering::{adjusted_rand_index, normalized_mutual_information, purity, silhouette, sse};
pub use confusion::ConfusionMatrix;
