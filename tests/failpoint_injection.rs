//! Fail-point robustness properties (`cargo test --features failpoints`).
//!
//! A [`Guard`] armed with a deterministic fail point injects budget
//! exhaustion or cancellation at an arbitrary check site. Sweeping the
//! trip site across randomized workloads must uphold the governance
//! contract everywhere:
//!
//! 1. no governed entry point panics, wherever the trip lands;
//! 2. a truncated frequent-itemset result is a downward-closed subset of
//!    the ungoverned run, with identical support counts;
//! 3. an unlimited, unarmed guard is bit-identical to the ungoverned
//!    run even with the fail-point machinery compiled in.

#![cfg(feature = "failpoints")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::assoc::{
    Ais, Apriori, AprioriHybrid, AprioriTid, Eclat, FpGrowth, FrequentItemsets, ItemsetMiner, Setm,
};
use datamining_suite::datamining::prelude::*;
use proptest::prelude::*;

/// Generic streaming resume check: trip a fail point mid-feed, verify
/// the Truncated outcome reports exactly the absorbed prefix, then
/// replay the un-absorbed suffix under a fresh guard and require the
/// engine to land in the same state as an uninterrupted run.
fn resume_after_trip<E: StreamEngine>(
    mut tripped: E,
    mut straight: E,
    records: &[E::Record],
    trip_at: u64,
    reason: TruncationReason,
    assert_same_state: impl Fn(&E, &E),
) {
    for r in records {
        straight.insert(r);
    }
    let guard = Guard::unlimited().with_failpoint(trip_at, reason);
    let out = tripped.insert_governed(records, &guard);
    let absorbed = out.result;
    match out.status {
        RunStatus::Complete => assert_eq!(absorbed, records.len()),
        RunStatus::Truncated(r) => {
            assert_eq!(r, reason);
            // The guard is charged *before* each insert, so the trip
            // lands on a record boundary: exactly `trip_at` records
            // were absorbed and the partial state is valid.
            assert_eq!(absorbed as u64, trip_at);
            assert!(absorbed < records.len());
        }
    }
    assert_eq!(tripped.records_seen() as usize, absorbed);
    let resumed = tripped.insert_governed(&records[absorbed..], &Guard::unlimited());
    assert!(resumed.is_complete());
    assert_eq!(tripped.records_seen(), straight.records_seen());
    assert_same_state(&tripped, &straight);
}

fn small_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..10, 0..6), 1..20).prop_map(TransactionDb::new)
}

fn any_reason() -> impl Strategy<Value = TruncationReason> {
    (0u8..4).prop_map(|v| match v {
        0 => TruncationReason::DeadlineExceeded,
        1 => TruncationReason::WorkLimitExceeded,
        2 => TruncationReason::IterationLimitReached,
        _ => TruncationReason::Cancelled,
    })
}

fn all_miners(min: MinSupport) -> Vec<Box<dyn ItemsetMiner>> {
    vec![
        Box::new(Apriori::new(min)),
        Box::new(AprioriTid::new(min)),
        Box::new(AprioriHybrid::new(min)),
        Box::new(Ais::new(min)),
        Box::new(Setm::new(min)),
        Box::new(FpGrowth::new(min)),
        Box::new(Eclat::new(min)),
        Box::new(Apriori::new(min).with_vertical_pass2(true)),
    ]
}

fn assert_subset(governed: &FrequentItemsets, full: &FrequentItemsets) {
    for (itemset, count) in governed.iter() {
        assert_eq!(
            full.support_count(itemset),
            Some(count),
            "governed itemset {itemset:?} missing or miscounted in the full run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1 + 2: wherever the fail point fires, no miner panics and
    /// every truncated result is a correctly-counted, downward-closed
    /// subset of the ungoverned run.
    #[test]
    fn injected_trips_never_panic_and_preserve_subset(
        db in small_db(),
        trip_at in 0u64..120,
        reason in any_reason(),
        min in 1usize..4,
    ) {
        for miner in all_miners(MinSupport::Count(min)) {
            let full = miner.mine(&db).unwrap();
            let guard = Guard::unlimited().with_failpoint(trip_at, reason);
            let out = miner.mine_governed(&db, &guard).unwrap();
            prop_assert!(out.result.itemsets.verify_downward_closure());
            assert_subset(&out.result.itemsets, &full.itemsets);
            match out.status {
                RunStatus::Complete => {
                    prop_assert_eq!(&out.result.itemsets, &full.itemsets)
                }
                RunStatus::Truncated(r) => prop_assert_eq!(r, reason),
            }
        }
    }

    /// Property 3: with failpoints compiled in but no fail point armed,
    /// an unlimited guard stays bit-identical to the ungoverned run.
    #[test]
    fn unarmed_unlimited_guard_is_bit_identical(db in small_db(), min in 1usize..4) {
        for miner in all_miners(MinSupport::Count(min)) {
            let plain = miner.mine(&db).unwrap();
            let out = miner.mine_governed(&db, &Guard::unlimited()).unwrap();
            prop_assert!(out.is_complete());
            prop_assert_eq!(&out.result.itemsets, &plain.itemsets);
        }
    }

    /// The clustering side of property 1: injected trips leave k-means
    /// with a structurally valid model (every point labelled, finite
    /// centroids), never a panic.
    #[test]
    fn kmeans_survives_injected_trips(trip_at in 0u64..60, reason in any_reason(), seed in 0u64..4) {
        let (data, _) = GaussianMixture::well_separated(3, 2, 40, 8.0)
            .unwrap()
            .generate(seed);
        let guard = Guard::unlimited().with_failpoint(trip_at, reason);
        let out = KMeans::new(3).with_seed(seed).fit_model_governed(&data, &guard).unwrap();
        prop_assert_eq!(out.result.assignments.len(), data.rows());
        prop_assert!(out.result.assignments.iter().all(|&l| l < 3));
        prop_assert!(out.result.centroids.as_slice().iter().all(|v| v.is_finite()));
    }

    /// The sequence side of property 1 + 2: AprioriAll under injection
    /// returns a subset of the ungoverned maximal patterns' support-true
    /// universe and never panics.
    #[test]
    fn apriori_all_survives_injected_trips(trip_at in 0u64..60, reason in any_reason()) {
        let db = SequenceGenerator::new(SequenceConfig::standard(60), 5)
            .unwrap()
            .generate(6);
        let full = AprioriAll::new(0.05).keep_non_maximal().mine(&db).unwrap();
        let guard = Guard::unlimited().with_failpoint(trip_at, reason);
        let out = AprioriAll::new(0.05)
            .keep_non_maximal()
            .mine_governed(&db, &guard)
            .unwrap();
        for p in &out.result.patterns {
            prop_assert!(
                full.patterns.iter().any(|q| q.elements == p.elements
                    && q.support_count == p.support_count),
                "pattern {:?} not in the ungoverned run",
                p.elements
            );
        }
        if out.is_complete() {
            prop_assert_eq!(out.result.patterns.len(), full.patterns.len());
        }
    }

    /// The streaming side of property 1 + resumability: a fail point
    /// tripping mid-feed leaves every engine in a valid Truncated
    /// partial state whose un-absorbed suffix, replayed under a fresh
    /// guard, reaches exactly the uninterrupted state — for k-means,
    /// BIRCH and sliding-window frequent mining alike.
    #[test]
    fn stream_engines_resume_after_injected_trips(
        trip_at in 0u64..90,
        reason in any_reason(),
        seed in 0u64..100,
    ) {
        let mixture = GaussianMixture::well_separated(3, 2, 60, 8.0).unwrap();
        let points: Vec<Vec<f64>> =
            PointStream::new(mixture, seed).take(80).map(|(p, _)| p).collect();
        let quest = QuestGenerator::new(
            QuestConfig {
                n_transactions: 1,
                avg_txn_len: 6.0,
                avg_pattern_len: 3.0,
                n_patterns: 20,
                n_items: 40,
                correlation: 0.25,
                corruption_mean: 0.4,
                corruption_sd: 0.1,
            },
            seed,
        )
        .unwrap();
        let txns: Vec<Vec<u32>> = TxnStream::new(quest, seed).take(80).collect();

        resume_after_trip(
            StreamKMeans::new(3, 7).unwrap(),
            StreamKMeans::new(3, 7).unwrap(),
            &points,
            trip_at,
            reason,
            |a, b| assert_eq!(a.snapshot(), b.snapshot()),
        );
        resume_after_trip(
            StreamBirch::new(3, 1.0, 6).unwrap(),
            StreamBirch::new(3, 1.0, 6).unwrap(),
            &points,
            trip_at,
            reason,
            |a, b| assert_eq!(a.snapshot(), b.snapshot()),
        );
        resume_after_trip(
            StreamFrequent::new(40, 3, Some(30)).unwrap(),
            StreamFrequent::new(40, 3, Some(30)).unwrap(),
            &txns,
            trip_at,
            reason,
            |a, b| assert_eq!(a.snapshot(), b.snapshot()),
        );
    }
}
