//! Fail-point robustness properties (`cargo test --features failpoints`).
//!
//! A [`Guard`] armed with a deterministic fail point injects budget
//! exhaustion or cancellation at an arbitrary check site. Sweeping the
//! trip site across randomized workloads must uphold the governance
//! contract everywhere:
//!
//! 1. no governed entry point panics, wherever the trip lands;
//! 2. a truncated frequent-itemset result is a downward-closed subset of
//!    the ungoverned run, with identical support counts;
//! 3. an unlimited, unarmed guard is bit-identical to the ungoverned
//!    run even with the fail-point machinery compiled in.

#![cfg(feature = "failpoints")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::assoc::{
    Ais, Apriori, AprioriHybrid, AprioriTid, Eclat, FpGrowth, FrequentItemsets, ItemsetMiner, Setm,
};
use datamining_suite::datamining::prelude::*;
use proptest::prelude::*;

fn small_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..10, 0..6), 1..20).prop_map(TransactionDb::new)
}

fn any_reason() -> impl Strategy<Value = TruncationReason> {
    (0u8..4).prop_map(|v| match v {
        0 => TruncationReason::DeadlineExceeded,
        1 => TruncationReason::WorkLimitExceeded,
        2 => TruncationReason::IterationLimitReached,
        _ => TruncationReason::Cancelled,
    })
}

fn all_miners(min: MinSupport) -> Vec<Box<dyn ItemsetMiner>> {
    vec![
        Box::new(Apriori::new(min)),
        Box::new(AprioriTid::new(min)),
        Box::new(AprioriHybrid::new(min)),
        Box::new(Ais::new(min)),
        Box::new(Setm::new(min)),
        Box::new(FpGrowth::new(min)),
        Box::new(Eclat::new(min)),
        Box::new(Apriori::new(min).with_vertical_pass2(true)),
    ]
}

fn assert_subset(governed: &FrequentItemsets, full: &FrequentItemsets) {
    for (itemset, count) in governed.iter() {
        assert_eq!(
            full.support_count(itemset),
            Some(count),
            "governed itemset {itemset:?} missing or miscounted in the full run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1 + 2: wherever the fail point fires, no miner panics and
    /// every truncated result is a correctly-counted, downward-closed
    /// subset of the ungoverned run.
    #[test]
    fn injected_trips_never_panic_and_preserve_subset(
        db in small_db(),
        trip_at in 0u64..120,
        reason in any_reason(),
        min in 1usize..4,
    ) {
        for miner in all_miners(MinSupport::Count(min)) {
            let full = miner.mine(&db).unwrap();
            let guard = Guard::unlimited().with_failpoint(trip_at, reason);
            let out = miner.mine_governed(&db, &guard).unwrap();
            prop_assert!(out.result.itemsets.verify_downward_closure());
            assert_subset(&out.result.itemsets, &full.itemsets);
            match out.status {
                RunStatus::Complete => {
                    prop_assert_eq!(&out.result.itemsets, &full.itemsets)
                }
                RunStatus::Truncated(r) => prop_assert_eq!(r, reason),
            }
        }
    }

    /// Property 3: with failpoints compiled in but no fail point armed,
    /// an unlimited guard stays bit-identical to the ungoverned run.
    #[test]
    fn unarmed_unlimited_guard_is_bit_identical(db in small_db(), min in 1usize..4) {
        for miner in all_miners(MinSupport::Count(min)) {
            let plain = miner.mine(&db).unwrap();
            let out = miner.mine_governed(&db, &Guard::unlimited()).unwrap();
            prop_assert!(out.is_complete());
            prop_assert_eq!(&out.result.itemsets, &plain.itemsets);
        }
    }

    /// The clustering side of property 1: injected trips leave k-means
    /// with a structurally valid model (every point labelled, finite
    /// centroids), never a panic.
    #[test]
    fn kmeans_survives_injected_trips(trip_at in 0u64..60, reason in any_reason(), seed in 0u64..4) {
        let (data, _) = GaussianMixture::well_separated(3, 2, 40, 8.0)
            .unwrap()
            .generate(seed);
        let guard = Guard::unlimited().with_failpoint(trip_at, reason);
        let out = KMeans::new(3).with_seed(seed).fit_model_governed(&data, &guard).unwrap();
        prop_assert_eq!(out.result.assignments.len(), data.rows());
        prop_assert!(out.result.assignments.iter().all(|&l| l < 3));
        prop_assert!(out.result.centroids.as_slice().iter().all(|v| v.is_finite()));
    }

    /// The sequence side of property 1 + 2: AprioriAll under injection
    /// returns a subset of the ungoverned maximal patterns' support-true
    /// universe and never panics.
    #[test]
    fn apriori_all_survives_injected_trips(trip_at in 0u64..60, reason in any_reason()) {
        let db = SequenceGenerator::new(SequenceConfig::standard(60), 5)
            .unwrap()
            .generate(6);
        let full = AprioriAll::new(0.05).keep_non_maximal().mine(&db).unwrap();
        let guard = Guard::unlimited().with_failpoint(trip_at, reason);
        let out = AprioriAll::new(0.05)
            .keep_non_maximal()
            .mine_governed(&db, &guard)
            .unwrap();
        for p in &out.result.patterns {
            prop_assert!(
                full.patterns.iter().any(|q| q.elements == p.elements
                    && q.support_count == p.support_count),
                "pattern {:?} not in the ungoverned run",
                p.elements
            );
        }
        if out.is_complete() {
            prop_assert_eq!(out.result.patterns.len(), full.patterns.len());
        }
    }
}
