//! Cross-crate integration tests: full pipelines from synthetic data
//! generation through mining/learning to evaluation, exercising the
//! public API exactly the way the examples do.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::prelude::*;

#[test]
fn market_basket_pipeline_end_to_end() {
    // Generate → mine (all three miners) → agree → rules → validate.
    let generator =
        QuestGenerator::new(QuestConfig::standard(8.0, 3.0, 1_500), 7).expect("valid config");
    let db = generator.generate(8);
    assert_eq!(db.len(), 1_500);

    let support = MinSupport::Fraction(0.01);
    let apriori = Apriori::new(support).mine(&db).unwrap();
    let tid = AprioriTid::new(support).mine(&db).unwrap();
    let ais = Ais::new(support).mine(&db).unwrap();
    assert_eq!(apriori.itemsets, tid.itemsets);
    assert_eq!(apriori.itemsets, ais.itemsets);
    assert!(
        apriori.itemsets.len() > 50,
        "workload too sparse to be interesting"
    );
    assert!(apriori.itemsets.verify_downward_closure());

    let rules = RuleGenerator::new(0.7).generate(&apriori.itemsets).unwrap();
    for rule in &rules {
        assert!(rule.confidence >= 0.7);
        // Re-derive confidence straight from the database.
        let mut union: Vec<u32> = rule
            .antecedent
            .iter()
            .chain(&rule.consequent)
            .copied()
            .collect();
        union.sort_unstable();
        let expected = db.support_count(&union) as f64 / db.support_count(&rule.antecedent) as f64;
        assert!((rule.confidence - expected).abs() < 1e-12);
    }
}

#[test]
fn clustering_pipeline_recovers_structure() {
    let mixture = GaussianMixture::well_separated(4, 3, 120, 9.0).expect("valid mixture");
    let (data, truth) = mixture.generate(5);
    let algorithms: Vec<Box<dyn Clusterer>> = vec![
        Box::new(KMeans::new(4).with_seed(2)),
        Box::new(Pam::new(4)),
        Box::new(Agglomerative::new(4).with_linkage(Linkage::Ward)),
        Box::new(Birch::new(4).with_threshold(1.5).with_seed(2)),
    ];
    for alg in algorithms {
        let clustering = alg.fit(&data).unwrap();
        let ari = adjusted_rand_index(&truth, &clustering.assignments).unwrap();
        assert!(ari > 0.95, "{} recovered ARI {ari}", alg.name());
        let nmi = normalized_mutual_information(&truth, &clustering.assignments).unwrap();
        assert!(nmi > 0.9, "{} NMI {nmi}", alg.name());
    }
    // Internal metrics agree with the external verdict on k.
    let sse4 = sse(
        &data,
        &KMeans::new(4).with_seed(2).fit(&data).unwrap().assignments,
    )
    .unwrap();
    let sse2 = sse(
        &data,
        &KMeans::new(2).with_seed(2).fit(&data).unwrap().assignments,
    )
    .unwrap();
    assert!(sse4 < sse2 * 0.6);
}

#[test]
fn classification_pipeline_with_cv_and_metrics() {
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F4, 1_200)
        .expect("rows > 0")
        .generate(3);
    let tree = TreeClassifier::new(
        DecisionTreeLearner::new()
            .with_criterion(SplitCriterion::GainRatio)
            .with_pruning(Pruning::Pessimistic { cf: 0.25 }),
    );
    let result = cross_validate(&tree, &data, &labels, 5, 1).unwrap();
    assert!(
        result.mean_accuracy > 0.9,
        "accuracy {}",
        result.mean_accuracy
    );
    assert_eq!(result.confusion.total(), 1_200);
    // Macro-F1 coherent with accuracy on a balanced problem.
    assert!((result.confusion.macro_f1() - result.mean_accuracy).abs() < 0.1);
}

#[test]
fn discretization_bridges_numeric_data_to_categorical_learners() {
    // Discretize the two numeric drivers of F2 and check a tree on the
    // discretized dataset still learns.
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 1_500)
        .expect("rows > 0")
        .generate(21);
    let mut discretized = data.clone();
    for name in ["age", "salary"] {
        let (idx, col) = discretized.column_by_name(name).expect("schema has it");
        let values = col.as_numeric().expect("numeric").to_vec();
        let fitted = EqualFrequencyExt::fit(&values);
        discretized = discretized
            .with_column(idx, fitted.transform_column(&values))
            .expect("same length");
    }
    let tree = DecisionTreeLearner::new()
        .fit(&discretized, &labels)
        .unwrap();
    let acc = tree
        .predict(&discretized)
        .iter()
        .zip(labels.codes())
        .filter(|(p, t)| p == t)
        .count() as f64
        / 1_500.0;
    assert!(acc > 0.85, "accuracy on discretized data {acc}");
}

/// Small helper: fit an equal-frequency discretizer with 8 bins.
struct EqualFrequencyExt;
impl EqualFrequencyExt {
    fn fit(values: &[f64]) -> datamining_suite::datamining::dataset::FittedDiscretizer {
        use datamining_suite::datamining::dataset::{Discretizer, EqualFrequency};
        EqualFrequency { bins: 8 }.fit(values).expect("non-empty")
    }
}

#[test]
fn csv_roundtrip_preserves_learning_behaviour() {
    use datamining_suite::datamining::dataset::csv::{read_csv, write_csv};
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 400)
        .expect("rows > 0")
        .generate(9);
    let mut buf = Vec::new();
    write_csv(&data, &mut buf).unwrap();
    let back = read_csv("roundtrip", &buf[..]).unwrap();
    assert_eq!(back.n_rows(), data.n_rows());
    assert_eq!(back.n_cols(), data.n_cols());
    // Same tree accuracy from the roundtripped data.
    let t1 = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
    let t2 = DecisionTreeLearner::new().fit(&back, &labels).unwrap();
    assert_eq!(t1.predict(&data), t2.predict(&back));
}

#[test]
fn transaction_db_text_roundtrip_preserves_mining() {
    let generator =
        QuestGenerator::new(QuestConfig::standard(6.0, 2.0, 400), 77).expect("valid config");
    let db = generator.generate(78);
    let mut buf = Vec::new();
    db.write_to(&mut buf).unwrap();
    let back = TransactionDb::read_from(&buf[..]).unwrap();
    let a = Apriori::new(MinSupport::Count(8)).mine(&db).unwrap();
    let b = Apriori::new(MinSupport::Count(8)).mine(&back).unwrap();
    assert_eq!(a.itemsets, b.itemsets);
}

#[test]
fn sequential_pattern_pipeline() {
    let generator =
        SequenceGenerator::new(SequenceConfig::standard(300), 13).expect("valid config");
    let db = generator.generate(14);
    let result = AprioriAll::new(0.05).mine(&db).unwrap();
    assert!(result.n_litemsets > 0);
    // Every reported pattern's support re-derives from the database.
    for p in &result.patterns {
        assert_eq!(p.support_count, db.support_count(&p.elements));
        assert!(p.support_count * 20 >= db.len(), "below 5% support");
    }
    // The maximal set is an antichain: lowering support only adds.
    let more = AprioriAll::new(0.02).keep_non_maximal().mine(&db).unwrap();
    let fewer = AprioriAll::new(0.05).keep_non_maximal().mine(&db).unwrap();
    assert!(more.patterns.len() >= fewer.patterns.len());
}

#[test]
fn extracted_rules_generalize_like_their_tree() {
    use datamining_suite::datamining::tree::rules_from_tree;
    let (train, train_l) = AgrawalGenerator::new(AgrawalFunction::F2, 900)
        .expect("rows > 0")
        .generate(41);
    let (test, test_l) = AgrawalGenerator::new(AgrawalFunction::F2, 400)
        .expect("rows > 0")
        .generate(42);
    let tree = DecisionTreeLearner::new()
        .with_pruning(Pruning::Pessimistic { cf: 0.25 })
        .fit(&train, &train_l)
        .unwrap();
    let rules = rules_from_tree(&tree, &train, &train_l).unwrap();
    let acc = |pred: Vec<u32>| {
        pred.iter()
            .zip(test_l.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 400.0
    };
    let tree_acc = acc(tree.predict(&test));
    let rule_acc = acc(rules.predict(&test));
    assert!(
        rule_acc >= tree_acc - 0.05,
        "rules {rule_acc} vs tree {tree_acc}"
    );
}

#[test]
fn dbscan_flags_the_planted_noise() {
    let mixture = GaussianMixture::well_separated(3, 2, 150, 10.0)
        .expect("valid mixture")
        .with_noise(25, 40.0);
    let (data, truth) = mixture.generate(6);
    let clustering = Dbscan::new(1.2, 5).fit(&data).unwrap();
    assert_eq!(clustering.n_clusters, 3);
    let flagged_noise = truth
        .iter()
        .enumerate()
        .filter(|&(i, &t)| t == 3 && clustering.assignments[i] == NOISE)
        .count();
    assert!(
        flagged_noise >= 20,
        "only {flagged_noise}/25 noise points flagged"
    );
}
