//! `datamining-suite`: the workspace meta-package.
//!
//! This crate exists to host the repository's runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`). For
//! library use, depend on [`dm_core`] (re-exported here as
//! [`datamining`]) or on the individual subsystem crates.

/// The full toolkit facade (alias of `dm-core`).
pub use dm_core as datamining;
